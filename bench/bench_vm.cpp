// Backend characterization: bytecode interpreter vs the native x86-64
// tier vs the RISC machine on the same FIR programs.
//
// The paper's architecture supports multiple backends (native IA32 and a
// RISC simulator); this bench quantifies our three. The RISC machine pays
// explicit spill traffic for every FIR variable access (a load/store
// architecture without a register allocator), so the bytecode VM wins by
// a modest constant factor — and the native tier should beat the
// interpreter by >=5x on hot arithmetic loops, with bit-identical
// instruction accounting (asserted here, not assumed).
#include <benchmark/benchmark.h>

#include <cstdio>

#include "frontend/compile.hpp"
#include "native/arch.hpp"
#include "native/engine.hpp"
#include "obs/metrics.hpp"
#include "risc/lower.hpp"
#include "risc/machine.hpp"
#include "support/stopwatch.hpp"
#include "vm/process.hpp"

namespace {

using namespace mojave;

const char* kWorkloads[] = {
    // 0: tight arithmetic loop
    "int main() { int acc = 0;"
    "  for (int i = 0; i < 20000; i++) { acc = acc * 3 + i; acc &= 65535; }"
    "  return acc; }",
    // 1: heap-heavy stencil-ish loop
    "int main() { ptr a = alloc(64); int acc = 0;"
    "  for (int i = 0; i < 64; i++) { a[i] = i; }"
    "  for (int r = 0; r < 400; r++) {"
    "    for (int i = 1; i < 63; i++) { a[i] = (a[i-1] + a[i+1]) / 2; }"
    "  }"
    "  for (int i = 0; i < 64; i++) { acc += a[i]; }"
    "  return acc; }",
    // 2: call-heavy recursion
    "int fib(int n) { if (n < 2) { return n; }"
    "  int a = fib(n - 1); int b = fib(n - 2); return a + b; }"
    "int main() { return fib(17); }",
};

vm::ProcessConfig tier_config(bool jit) {
  vm::ProcessConfig cfg;
  cfg.jit.enabled = jit;
  cfg.jit.threshold = 64;
  return cfg;
}

void run_backend(benchmark::State& state, bool jit) {
  fir::Program program = frontend::compile_source(
      "w", kWorkloads[state.range(0)]);
  std::int64_t code = 0;
  std::uint64_t insns = 0;
  std::uint64_t compiled = 0;
  std::uint64_t deopts = 0;
  for (auto _ : state) {
    vm::Process p(fir::clone_program(program), tier_config(jit));
    code = p.run().exit_code;
    insns = p.vm().stats().instructions;
    if (const native::Engine* eng = p.vm().native_engine()) {
      compiled = eng->compiled_functions();
      deopts = eng->total_deopts();
    }
  }
  benchmark::DoNotOptimize(code);
  state.counters["insns"] = static_cast<double>(insns);
  if (jit) {
    state.counters["compiled_funcs"] = static_cast<double>(compiled);
    state.counters["deopts"] = static_cast<double>(deopts);
  }
}

/// Pure interpretation — the baseline tier (JIT explicitly off so the
/// MOJAVE_JIT environment cannot skew the comparison).
void BM_BytecodeBackend(benchmark::State& state) {
  run_backend(state, false);
}

/// Tiered execution: interpreter warm-up, then compiled x86-64.
void BM_NativeTier(benchmark::State& state) {
  if (!native::jit_supported()) {
    state.SkipWithError("native tier unsupported on this host");
    return;
  }
  run_backend(state, true);
}

void BM_RiscBackend(benchmark::State& state) {
  fir::Program program = frontend::compile_source(
      "w", kWorkloads[state.range(0)]);
  const risc::RProgram rp = risc::lower(program);
  std::int64_t code = 0;
  std::uint64_t insns = 0;
  double spill_ratio = 0;
  for (auto _ : state) {
    runtime::Heap heap;
    spec::SpeculationManager spec(heap);
    risc::Machine m(heap, spec, rp);
    code = m.run().exit_code;
    insns = m.stats().instructions;
    spill_ratio = static_cast<double>(m.stats().spill_loads +
                                      m.stats().spill_stores) /
                  static_cast<double>(m.stats().instructions);
  }
  benchmark::DoNotOptimize(code);
  state.counters["insns"] = static_cast<double>(insns);
  state.counters["spill_frac"] = spill_ratio;
}

/// Wall time of `runs` fresh processes over workload `w` on one tier,
/// reporting the result and the retired-instruction count so the caller
/// can check the equivalence the deopt protocol guarantees.
double tier_seconds(int w, bool jit, int runs, std::int64_t& code,
                    std::uint64_t& insns) {
  fir::Program program = frontend::compile_source("w", kWorkloads[w]);
  Stopwatch sw;
  for (int r = 0; r < runs; ++r) {
    vm::Process p(fir::clone_program(program), tier_config(jit));
    code = p.run().exit_code;
    insns = p.vm().stats().instructions;
  }
  return sw.seconds() / runs;
}

}  // namespace

BENCHMARK(BM_BytecodeBackend)->Arg(0)->Arg(1)->Arg(2)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_NativeTier)->Arg(0)->Arg(1)->Arg(2)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_RiscBackend)->Arg(0)->Arg(1)->Arg(2)
    ->Unit(benchmark::kMillisecond);

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  // One-line machine-readable record for the perf trajectory: hot-loop
  // wall time per tier, the speedup, and the native tier's own telemetry
  // from the metrics registry. On unsupported hosts the native columns
  // report the interpreter (speedup ~1) and jit_supported says why.
  const bool supported = native::jit_supported();
  std::int64_t code_i = 0, code_n = 0;
  std::uint64_t insns_i = 0, insns_n = 0;
  const int kRuns = 10;
  const double interp_s = tier_seconds(0, false, kRuns, code_i, insns_i);
  const double native_s =
      supported ? tier_seconds(0, true, kRuns, code_n, insns_n) : interp_s;
  if (supported && (code_i != code_n || insns_i != insns_n)) {
    std::fprintf(stderr,
                 "FATAL: tiers disagree (code %lld vs %lld, insns %llu vs "
                 "%llu)\n",
                 static_cast<long long>(code_i),
                 static_cast<long long>(code_n),
                 static_cast<unsigned long long>(insns_i),
                 static_cast<unsigned long long>(insns_n));
    return 1;
  }
  const auto snap = mojave::obs::MetricsRegistry::instance().snapshot();
  const auto counter = [&](const char* name) -> unsigned long long {
    const auto it = snap.counters.find(name);
    return it == snap.counters.end() ? 0ull : it->second;
  };
  const auto hist_q = [&](const char* name, double q) -> double {
    const auto it = snap.histograms.find(name);
    return it == snap.histograms.end() ? 0.0 : it->second.quantile_us(q);
  };
  std::printf(
      "BENCH_JSON {\"bench\":\"vm\",\"jit_supported\":%d,"
      "\"hot_loop_interp_ms\":%.3f,\"hot_loop_native_ms\":%.3f,"
      "\"native_speedup\":%.2f,"
      "\"native_compiled_funcs\":%llu,\"native_deopts_guard\":%llu,"
      "\"native_deopts_cold\":%llu,\"native_compile_p50_us\":%.1f}\n",
      supported ? 1 : 0, interp_s * 1e3, native_s * 1e3,
      native_s > 0 ? interp_s / native_s : 0.0,
      counter("native.compiled_funcs"), counter("native.deopts.guard"),
      counter("native.deopts.cold_target"),
      hist_q("native.compile_us", 0.5));
  return 0;
}
