// Backend characterization: bytecode interpreter vs RISC machine
// throughput on the same FIR programs.
//
// The paper's architecture supports multiple backends (native IA32 and a
// RISC simulator); this bench quantifies our two. The RISC machine pays
// explicit spill traffic for every FIR variable access (a load/store
// architecture without a register allocator), so the bytecode VM should
// win by a modest constant factor — the gap is the price of the
// lower-level target, reported as spills per instruction.
#include <benchmark/benchmark.h>

#include "frontend/compile.hpp"
#include "risc/lower.hpp"
#include "risc/machine.hpp"
#include "vm/process.hpp"

namespace {

using namespace mojave;

const char* kWorkloads[] = {
    // 0: tight arithmetic loop
    "int main() { int acc = 0;"
    "  for (int i = 0; i < 20000; i++) { acc = acc * 3 + i; acc &= 65535; }"
    "  return acc; }",
    // 1: heap-heavy stencil-ish loop
    "int main() { ptr a = alloc(64); int acc = 0;"
    "  for (int i = 0; i < 64; i++) { a[i] = i; }"
    "  for (int r = 0; r < 400; r++) {"
    "    for (int i = 1; i < 63; i++) { a[i] = (a[i-1] + a[i+1]) / 2; }"
    "  }"
    "  for (int i = 0; i < 64; i++) { acc += a[i]; }"
    "  return acc; }",
    // 2: call-heavy recursion
    "int fib(int n) { if (n < 2) { return n; }"
    "  int a = fib(n - 1); int b = fib(n - 2); return a + b; }"
    "int main() { return fib(17); }",
};

void BM_BytecodeBackend(benchmark::State& state) {
  fir::Program program = frontend::compile_source(
      "w", kWorkloads[state.range(0)]);
  std::int64_t code = 0;
  std::uint64_t insns = 0;
  for (auto _ : state) {
    vm::Process p(fir::clone_program(program));
    code = p.run().exit_code;
    insns = p.vm().stats().instructions;
  }
  benchmark::DoNotOptimize(code);
  state.counters["insns"] = static_cast<double>(insns);
}

void BM_RiscBackend(benchmark::State& state) {
  fir::Program program = frontend::compile_source(
      "w", kWorkloads[state.range(0)]);
  const risc::RProgram rp = risc::lower(program);
  std::int64_t code = 0;
  std::uint64_t insns = 0;
  double spill_ratio = 0;
  for (auto _ : state) {
    runtime::Heap heap;
    spec::SpeculationManager spec(heap);
    risc::Machine m(heap, spec, rp);
    code = m.run().exit_code;
    insns = m.stats().instructions;
    spill_ratio = static_cast<double>(m.stats().spill_loads +
                                      m.stats().spill_stores) /
                  static_cast<double>(m.stats().instructions);
  }
  benchmark::DoNotOptimize(code);
  state.counters["insns"] = static_cast<double>(insns);
  state.counters["spill_frac"] = spill_ratio;
}

}  // namespace

BENCHMARK(BM_BytecodeBackend)->Arg(0)->Arg(1)->Arg(2)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_RiscBackend)->Arg(0)->Arg(1)->Arg(2)
    ->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
