// E8 — the log-structured chunk-store engine: a million tiny checkpoints
// without a million files.
//
// The flat layout's failure mode is metadata, not bandwidth: one inode
// and one dirent per chunk makes small-checkpoint workloads readdir- and
// fsync-bound. The engine appends chunks to large extent files, so the
// headline numbers here are (a) small-put throughput over 10^6 distinct
// small chunks and (b) how many extent *files* that run leaves on disk —
// gated in bench/baseline.jsonl at a deliberate ceiling of 1000 (the
// flat layout would leave 10^6; a healthy engine leaves a handful).
//
// The micro benchmarks pin the per-operation costs around that headline:
// cold put, cached read vs uncached read (the LRU block cache), and
// compaction of a half-dead extent population.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <vector>

#include "ckpt/engine.hpp"
#include "support/stopwatch.hpp"

namespace {

namespace fs = std::filesystem;
using namespace mojave;

fs::path fresh_dir(const std::string& name) {
  const fs::path dir = fs::temp_directory_path() / name;
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

/// A distinct small chunk per sequence number: 96 bytes, mostly zeros
/// with the counter stamped in — the shape of a tiny rank image delta
/// (and friendly to the zero-run codec, like real images are).
std::vector<std::byte> small_chunk(std::uint64_t i) {
  std::vector<std::byte> data(96);
  std::memcpy(data.data(), &i, sizeof(i));
  data[40] = static_cast<std::byte>(i >> 3);
  return data;
}

void BM_EngineSmallPut(benchmark::State& state) {
  const fs::path dir = fresh_dir("mojave_bench_engine_put");
  ckpt::ChunkEngine engine(dir);
  std::uint64_t i = 0;
  for (auto _ : state) {
    const auto data = small_chunk(i++);
    engine.put(ckpt::ChunkKey::of(data), data);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(i));
}

void BM_EngineReadCached(benchmark::State& state) {
  const fs::path dir = fresh_dir("mojave_bench_engine_read_hot");
  ckpt::ChunkEngine engine(dir);
  std::vector<ckpt::ChunkKey> keys;
  for (std::uint64_t i = 0; i < 1024; ++i) {
    const auto data = small_chunk(i);
    keys.push_back(ckpt::ChunkKey::of(data));
    engine.put(keys.back(), data);
  }
  std::uint64_t i = 0;
  for (auto _ : state) {
    auto got = engine.read(keys[i++ % keys.size()]);
    benchmark::DoNotOptimize(got);
  }
}

void BM_EngineReadUncached(benchmark::State& state) {
  const fs::path dir = fresh_dir("mojave_bench_engine_read_cold");
  ckpt::ChunkEngine::Options opts;
  opts.cache_bytes = 0;  // every read goes to the extent file
  ckpt::ChunkEngine engine(dir, opts);
  std::vector<ckpt::ChunkKey> keys;
  for (std::uint64_t i = 0; i < 1024; ++i) {
    const auto data = small_chunk(i);
    keys.push_back(ckpt::ChunkKey::of(data));
    engine.put(keys.back(), data);
  }
  std::uint64_t i = 0;
  for (auto _ : state) {
    auto got = engine.read(keys[i++ % keys.size()]);
    benchmark::DoNotOptimize(got);
  }
}

/// Compact a population where half the records are tombstoned — the
/// steady state a GC'd checkpoint store converges to.
void BM_EngineCompactHalfDead(benchmark::State& state) {
  std::uint64_t reclaimed = 0;
  for (auto _ : state) {
    state.PauseTiming();
    const fs::path dir = fresh_dir("mojave_bench_engine_compact");
    ckpt::ChunkEngine::Options opts;
    opts.extent_target_bytes = 1 << 20;  // many extents, realistic husks
    opts.compact_min_idle_seconds = 0;
    ckpt::ChunkEngine engine(dir, opts);
    std::vector<ckpt::ChunkKey> keys;
    for (std::uint64_t i = 0; i < 20000; ++i) {
      const auto data = small_chunk(i);
      keys.push_back(ckpt::ChunkKey::of(data));
      engine.put(keys.back(), data);
    }
    for (std::size_t i = 0; i < keys.size(); i += 2) engine.remove(keys[i]);
    state.ResumeTiming();
    const auto stats = engine.compact(/*force=*/true);
    reclaimed = stats.bytes_reclaimed;
    benchmark::DoNotOptimize(reclaimed);
  }
  state.counters["bytes_reclaimed"] = static_cast<double>(reclaimed);
}

}  // namespace

BENCHMARK(BM_EngineSmallPut)->MinTime(0.5);
BENCHMARK(BM_EngineReadCached)->MinTime(0.5);
BENCHMARK(BM_EngineReadUncached)->MinTime(0.5);
BENCHMARK(BM_EngineCompactHalfDead)->Unit(benchmark::kMillisecond)
    ->Iterations(3);

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();

  // The headline run: 10^6 distinct small checkpoints into one engine,
  // then read a sample back (half repeated, exercising the cache). The
  // trendline gates throughput (floor) and the extent-file count
  // (ceiling): the flat layout this engine replaced would report
  // small_put_extents = 10^6.
  constexpr std::uint64_t kSmallPuts = 1000000;
  const fs::path dir = fresh_dir("mojave_bench_engine_headline");
  ckpt::ChunkEngine engine(dir);

  mojave::Stopwatch put_sw;
  for (std::uint64_t i = 0; i < kSmallPuts; ++i) {
    const auto data = small_chunk(i);
    engine.put(ckpt::ChunkKey::of(data), data);
  }
  engine.flush();
  const double put_s = put_sw.seconds();

  mojave::Stopwatch read_sw;
  constexpr std::uint64_t kReads = 100000;
  std::uint64_t read_ok = 0;
  for (std::uint64_t i = 0; i < kReads; ++i) {
    // Stride through the keyspace, revisiting half the keys once.
    const auto data = small_chunk((i % (kReads / 2)) * 7 % kSmallPuts);
    if (engine.read(ckpt::ChunkKey::of(data)).has_value()) ++read_ok;
  }
  const double read_s = read_sw.seconds();

  const auto stats = engine.stats();
  std::printf(
      "BENCH_JSON {\"bench\":\"ckpt_engine\","
      "\"small_puts\":%llu,\"small_put_per_s\":%.0f,"
      "\"small_put_extents\":%llu,\"small_put_wall_ms\":%.1f,"
      "\"extent_file_mb\":%.1f,\"live_ratio\":%.4f,"
      "\"read_per_s\":%.0f,\"read_ok\":%llu,"
      "\"cache_hits\":%llu,\"cache_misses\":%llu,"
      "\"cache_hit_rate\":%.4f,\"compactions\":%llu}\n",
      static_cast<unsigned long long>(kSmallPuts),
      static_cast<double>(kSmallPuts) / put_s,
      static_cast<unsigned long long>(stats.extents), put_s * 1e3,
      static_cast<double>(stats.extent_file_bytes) / (1024.0 * 1024.0),
      stats.live_ratio(), static_cast<double>(kReads) / read_s,
      static_cast<unsigned long long>(read_ok),
      static_cast<unsigned long long>(stats.cache_hits),
      static_cast<unsigned long long>(stats.cache_misses),
      stats.cache_hit_rate(),
      static_cast<unsigned long long>(stats.compactions));

  benchmark::Shutdown();
  fs::remove_all(dir);
  return 0;
}
