// Shared workload builders for the benchmark harness.
//
// The paper's measurements (Section 5) are parameterized on process heap
// size (200 KB for the speculation costs, ~1 MB for migration) and on the
// fraction of the heap mutated inside a speculation. These helpers build
// processes and heaps with those shapes.
#pragma once

#include <memory>
#include <vector>

#include "fir/builder.hpp"
#include "migrate/image.hpp"
#include "runtime/heap.hpp"
#include "spec/speculation.hpp"
#include "support/rng.hpp"
#include "vm/interpreter.hpp"
#include "vm/process.hpp"

namespace mojave::bench {

/// Populate `heap` with `nblocks` live tagged blocks of `slots` slots each,
/// pinned via the returned RootSet. Slot payloads mix ints and pointers so
/// GC traversal and serialization see realistic shapes.
struct HeapWorkload {
  std::unique_ptr<runtime::RootSet> roots;
  std::vector<BlockIndex> blocks;
};

inline HeapWorkload fill_heap(runtime::Heap& heap, std::size_t nblocks,
                              std::uint32_t slots) {
  HeapWorkload w;
  w.roots = std::make_unique<runtime::RootSet>(heap);
  Rng rng(42);
  for (std::size_t i = 0; i < nblocks; ++i) {
    const BlockIndex idx = heap.alloc_tagged(slots);
    w.blocks.push_back(idx);
    w.roots->pin(runtime::Value::from_ptr(idx, 0));
    for (std::uint32_t s = 0; s < slots; ++s) {
      if (!w.blocks.empty() && rng.chance(0.2)) {
        const BlockIndex target = w.blocks[rng.below(w.blocks.size())];
        heap.write_slot(idx, s, runtime::Value::from_ptr(target, 0));
      } else {
        heap.write_slot(idx, s,
                        runtime::Value::from_int(
                            static_cast<std::int64_t>(rng.next())));
      }
    }
  }
  return w;
}

/// Write one slot in `pct`% of the workload's blocks (each first write
/// inside a speculation clones the whole block copy-on-write).
inline void mutate_fraction(runtime::Heap& heap, const HeapWorkload& w,
                            int pct) {
  const std::size_t n = w.blocks.size() * static_cast<std::size_t>(pct) / 100;
  for (std::size_t i = 0; i < n; ++i) {
    heap.write_slot(w.blocks[i], 0, runtime::Value::from_int(77));
  }
}

/// A migration-capture hook: records the resume continuation instead of
/// executing a protocol, so benches can pack the same live process
/// repeatedly.
class CaptureHook final : public vm::MigrationHook {
 public:
  Action on_migrate(vm::Interpreter&, MigrateLabel label, const std::string&,
                    FunIndex resume_fun,
                    std::span<const runtime::Value> resume_args) override {
    label_ = label;
    resume_fun_ = resume_fun;
    resume_args_.assign(resume_args.begin(), resume_args.end());
    return Action::kExit;
  }

  MigrateLabel label() const { return label_; }
  FunIndex resume_fun() const { return resume_fun_; }
  const std::vector<runtime::Value>& resume_args() const {
    return resume_args_;
  }

 private:
  MigrateLabel label_ = 0;
  FunIndex resume_fun_ = 0;
  std::vector<runtime::Value> resume_args_;
};

/// Build a process whose live heap is ~`heap_kbytes` and drive it to a
/// migration point, ready to be packed. The program allocates a linked
/// array-of-arrays (so the image has realistic pointer structure), then
/// executes `migrate`, which the CaptureHook intercepts.
struct MigratableProcess {
  std::unique_ptr<vm::Process> process;
  std::unique_ptr<CaptureHook> hook;
};

/// `code_functions` controls how much *program text* travels with the
/// process: the paper migrates whole applications whose FIR the
/// destination must verify and recompile, so migration cost has a code
/// component as well as a heap component.
inline MigratableProcess make_migratable_process(std::size_t heap_kbytes,
                                                 std::size_t code_functions = 0) {
  using fir::Atom;
  using fir::Binop;
  using fir::Type;

  // Each row: 64 slots = 1 KiB of payload.
  const auto rows = static_cast<std::int64_t>(heap_kbytes);
  fir::ProgramBuilder pb("mig_workload");
  // Synthetic application code: straight-line arithmetic functions the
  // destination has to typecheck and lower even though the benchmark's
  // driver never calls them.
  for (std::size_t f = 0; f < code_functions; ++f) {
    const auto id = pb.declare("work" + std::to_string(f),
                               {Type::integer(), Type::integer()});
    auto fb = pb.define(id, {"x", "y"});
    Atom acc = fb.arg(0);
    for (int k = 0; k < 24; ++k) {
      const Binop op = k % 3 == 0   ? Binop::kAdd
                       : k % 3 == 1 ? Binop::kMul
                                    : Binop::kXor;
      acc = Atom::variable(
          fb.let_binop("t" + std::to_string(k), op, acc,
                       k % 2 == 0 ? fb.arg(1) : Atom::integer(k + 1)));
    }
    fb.halt(acc);
  }
  auto main_id = pb.declare("main", {});
  auto loop_id = pb.declare("loop", {Type::integer(), Type::ptr()});
  auto go_id = pb.declare("go", {Type::ptr()});
  auto done_id = pb.declare("done", {Type::ptr()});
  {
    auto fb = pb.define(main_id, {});
    auto dir = fb.let_alloc("dir", Atom::integer(rows), Atom::integer(0));
    fb.tail_call(Atom::fun_ref(loop_id), {Atom::integer(0), fb.v(dir)});
  }
  {
    auto fb = pb.define(loop_id, {"i", "dir"});
    auto done = fb.let_binop("done", Binop::kGe, fb.arg(0),
                             Atom::integer(rows));
    fb.branch(
        fb.v(done),
        [&](auto& t) { t.tail_call(Atom::fun_ref(go_id), {t.arg(1)}); },
        [&](auto& e) {
          auto row = e.let_alloc("row", Atom::integer(64), Atom::integer(1));
          e.write(e.arg(1), e.arg(0), e.v(row));
          // Put a little structure in the row.
          e.write(e.v(row), Atom::integer(0), e.arg(0));
          e.write(e.v(row), Atom::integer(1), e.arg(1));
          auto i1 = e.let_binop("i1", Binop::kAdd, e.arg(0), Atom::integer(1));
          e.tail_call(Atom::fun_ref(loop_id), {e.v(i1), e.arg(1)});
        });
  }
  {
    auto fb = pb.define(go_id, {"dir"});
    auto tgt = fb.let_atom("tgt", Type::ptr(), pb.str("checkpoint://bench"));
    fb.migrate(1, fb.v(tgt), Atom::fun_ref(done_id), {fb.arg(0)});
  }
  {
    auto fb = pb.define(done_id, {"dir"});
    fb.halt(Atom::integer(0));
  }

  MigratableProcess out;
  vm::ProcessConfig cfg;
  cfg.heap.old_capacity =
      std::max<std::size_t>(8u << 20, heap_kbytes * 1024 * 4);
  out.process = std::make_unique<vm::Process>(pb.take("main"), cfg);
  out.hook = std::make_unique<CaptureHook>();
  out.process->vm().set_migration_hook(out.hook.get());
  const auto run = out.process->run();
  if (run.kind != vm::RunResult::Kind::kMigratedAway) {
    throw Error("migration workload did not reach its migration point");
  }
  return out;
}

}  // namespace mojave::bench
