// E7 — the grid application: checkpoint-interval overhead and the cost of
// recovery versus restarting from scratch.
//
// Paper (Sections 2 and 5): "Depending on the failure frequency, this
// parameter [the checkpoint interval] can be adjusted to balance the
// overhead of speculations against the expected cost of fault recovery"
// and "the overhead from using speculative execution and process migration
// is small compared to having to re-start the application from scratch".
//
// Shape to reproduce:
//   * runtime grows as the checkpoint interval shrinks (more commits +
//     checkpoint writes), with modest overhead at sane intervals;
//   * completing a run through a mid-run failure (rollback + resurrection)
//     costs far less than the failure-free runtime of a from-scratch
//     restart would add.
#include <benchmark/benchmark.h>

#include <chrono>
#include <filesystem>
#include <thread>

#include "gridapp/heat.hpp"
#include "support/stopwatch.hpp"

namespace {

using namespace mojave;

gridapp::HeatConfig bench_grid(std::uint32_t interval) {
  gridapp::HeatConfig cfg;
  cfg.nodes = 4;
  cfg.rows = 32;
  cfg.cols = 32;
  cfg.steps = 160;
  cfg.checkpoint_interval = interval;
  return cfg;
}

cluster::ClusterConfig bench_cluster() {
  cluster::ClusterConfig ccfg;
  ccfg.recv_timeout_seconds = 30.0;
  return ccfg;
}

/// Failure-free runtime vs checkpoint interval (Arg = interval; 0 = no
/// checkpointing, the baseline).
void BM_GridInterval(benchmark::State& state) {
  const auto interval = static_cast<std::uint32_t>(state.range(0));
  const auto cfg = bench_grid(interval);
  double checkpoints = 0;
  double ckpt_ms = 0;
  double insns = 0;
  double ckpt_kb = 0;
  for (auto _ : state) {
    const auto run = gridapp::run_heat(cfg, bench_cluster());
    if (!run.all_clean) state.SkipWithError("grid run failed");
    benchmark::DoNotOptimize(run.sums.data());
    checkpoints = 0;
    ckpt_ms = 0;
    insns = 0;
    for (const auto& node : run.nodes) {
      checkpoints += static_cast<double>(node.checkpoints);
      ckpt_ms += node.checkpoint_seconds * 1e3;
      insns += static_cast<double>(node.instructions);
      ckpt_kb = static_cast<double>(node.checkpoint_bytes) / 1024.0;
    }
  }
  state.counters["interval"] = interval;
  state.counters["checkpoints_per_run"] = checkpoints;
  // Deterministic work metrics: wall time on a loaded host is noisy, but
  // the checkpoint cost (pack time) and executed instructions are not.
  state.counters["ckpt_cost_ms"] = ckpt_ms;
  state.counters["vm_minsns"] = insns / 1e6;
  state.counters["image_kb"] = ckpt_kb;
}

/// Completion time with one injected failure + resurrection, versus the
/// arithmetic cost of restarting from scratch at the same failure point.
double fault_free_insns_ = 0;

void BM_GridRecoveryVsRestart(benchmark::State& state) {
  const auto cfg = bench_grid(10);
  double fault_free_s = 0;
  {
    Stopwatch sw;
    const auto run = gridapp::run_heat(cfg, bench_cluster());
    if (!run.all_clean) state.SkipWithError("baseline failed");
    fault_free_s = sw.seconds();
    fault_free_insns_ = 0;
    for (const auto& node : run.nodes) {
      fault_free_insns_ += static_cast<double>(node.instructions);
    }
  }

  // Inject the failure after the victim's 6th checkpoint (step ~60 of
  // 160), detected by watching the checkpoint file being overwritten.
  // This is where the recovery-vs-restart gap the paper argues for lives:
  // a restart re-executes the whole 6-interval prefix on every node, while
  // recovery re-executes at most one interval.
  constexpr int kKillAfterCheckpoints = 6;
  double faulted_s = 0;
  std::int64_t n = 0;
  double faulted_insns = 0;
  for (auto _ : state) {
    Stopwatch sw;
    const auto run = gridapp::run_heat(
        cfg, bench_cluster(), [&](cluster::Cluster& cl) {
          cl.enable_auto_resurrection(0.01);
          namespace fs = std::filesystem;
          const fs::path ckpt =
              cl.storage().path_for(cl.checkpoint_name(1));
          int seen = 0;
          fs::file_time_type last{};
          for (int spin = 0; spin < 20000 && seen < kKillAfterCheckpoints;
               ++spin) {
            std::error_code ec;
            const auto t = fs::last_write_time(ckpt, ec);
            if (!ec && t != last) {
              last = t;
              ++seen;
            }
            std::this_thread::sleep_for(std::chrono::microseconds(200));
          }
          cl.kill(1);
        });
    faulted_s += sw.seconds();
    if (!run.all_clean) state.SkipWithError("faulted run did not recover");
    faulted_insns = 0;
    for (const auto& node : run.nodes) {
      faulted_insns += static_cast<double>(node.instructions);
    }
    ++n;
  }
  faulted_s /= static_cast<double>(n);

  // Work lost to the failure under each policy, in VM instructions:
  // recovery re-executes ≤ 1 checkpoint interval; a restart at the same
  // point re-pays the whole prefix on every node.
  const double per_interval = fault_free_insns_ / 16.0;  // 160 steps / 10
  state.counters["fault_free_minsns"] = fault_free_insns_ / 1e6;
  state.counters["recovery_lost_minsns"] =
      (faulted_insns - fault_free_insns_) / 1e6;
  state.counters["restart_lost_minsns"] =
      per_interval * kKillAfterCheckpoints / 1e6;
  state.counters["fault_free_ms"] = fault_free_s * 1e3;
  state.counters["with_failure_ms"] = faulted_s * 1e3;
}

}  // namespace

BENCHMARK(BM_GridInterval)->Arg(0)->Arg(5)->Arg(10)->Arg(20)->Arg(40)
    ->Unit(benchmark::kMillisecond)->MinTime(0.5);
BENCHMARK(BM_GridRecoveryVsRestart)
    ->Unit(benchmark::kMillisecond)->MinTime(0.5);

BENCHMARK_MAIN();
