// E7 — the grid application: checkpoint-interval overhead and the cost of
// recovery versus restarting from scratch.
//
// Paper (Sections 2 and 5): "Depending on the failure frequency, this
// parameter [the checkpoint interval] can be adjusted to balance the
// overhead of speculations against the expected cost of fault recovery"
// and "the overhead from using speculative execution and process migration
// is small compared to having to re-start the application from scratch".
//
// Shape to reproduce:
//   * runtime grows as the checkpoint interval shrinks (more commits +
//     checkpoint writes), with modest overhead at sane intervals;
//   * completing a run through a mid-run failure (rollback + resurrection)
//     costs far less than the failure-free runtime of a from-scratch
//     restart would add;
//   * with the incremental chunk store, checkpoints after the first write
//     only the changed fraction of the image (the dirty grid band plus VM
//     state), not the full image — reported as incremental_write_ratio in
//     the BENCH_JSON line.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <thread>

#include "gridapp/heat.hpp"
#include "obs/metrics.hpp"
#include "support/stopwatch.hpp"

namespace {

using namespace mojave;

gridapp::HeatConfig bench_grid(std::uint32_t interval) {
  gridapp::HeatConfig cfg;
  cfg.nodes = 4;
  cfg.rows = 32;
  cfg.cols = 32;
  cfg.steps = 160;
  cfg.checkpoint_interval = interval;
  // A realistic image: the mutable grid rides along with a large block of
  // write-once application state (meshes, tables). The chunk store should
  // upload that block once and dedupe it in every later checkpoint.
  cfg.static_slots = 12288;
  return cfg;
}

cluster::ClusterConfig bench_cluster() {
  cluster::ClusterConfig ccfg;
  ccfg.recv_timeout_seconds = 30.0;
  return ccfg;
}

/// Failure-free runtime vs checkpoint interval (Arg = interval; 0 = no
/// checkpointing, the baseline).
void BM_GridInterval(benchmark::State& state) {
  const auto interval = static_cast<std::uint32_t>(state.range(0));
  const auto cfg = bench_grid(interval);
  double checkpoints = 0;
  double ckpt_ms = 0;
  double insns = 0;
  double ckpt_kb = 0;
  double written_kb = 0;
  for (auto _ : state) {
    const auto run = gridapp::run_heat(cfg, bench_cluster());
    if (!run.all_clean) state.SkipWithError("grid run failed");
    benchmark::DoNotOptimize(run.sums.data());
    checkpoints = 0;
    ckpt_ms = 0;
    insns = 0;
    written_kb = 0;
    for (const auto& node : run.nodes) {
      checkpoints += static_cast<double>(node.checkpoints);
      ckpt_ms += node.checkpoint_seconds * 1e3;
      insns += static_cast<double>(node.instructions);
      ckpt_kb = static_cast<double>(node.checkpoint_bytes) / 1024.0;
      written_kb +=
          static_cast<double>(node.checkpoint_bytes_written) / 1024.0;
    }
  }
  state.counters["interval"] = interval;
  state.counters["checkpoints_per_run"] = checkpoints;
  // Deterministic work metrics: wall time on a loaded host is noisy, but
  // the checkpoint cost (pack time) and executed instructions are not.
  state.counters["ckpt_cost_ms"] = ckpt_ms;
  state.counters["vm_minsns"] = insns / 1e6;
  state.counters["image_kb"] = ckpt_kb;
  // Chunk-store delta actually uploaded across the whole run — with
  // dedup this stays far below checkpoints_per_run * image_kb.
  state.counters["written_kb"] = written_kb;
}

/// Completion time with one injected failure + resurrection, versus the
/// arithmetic cost of restarting from scratch at the same failure point.
double fault_free_insns_ = 0;
double fault_free_wall_s_ = 0;  // exported in the BENCH_JSON trendline

void BM_GridRecoveryVsRestart(benchmark::State& state) {
  const auto cfg = bench_grid(10);
  double fault_free_s = 0;
  {
    Stopwatch sw;
    const auto run = gridapp::run_heat(cfg, bench_cluster());
    if (!run.all_clean) state.SkipWithError("baseline failed");
    fault_free_s = sw.seconds();
    fault_free_wall_s_ = fault_free_s;
    fault_free_insns_ = 0;
    for (const auto& node : run.nodes) {
      fault_free_insns_ += static_cast<double>(node.instructions);
    }
  }

  // Inject the failure after the victim's 6th checkpoint (step ~60 of
  // 160), detected by watching its snapshot's manifest sequence advance
  // in the chunk store. This is where the recovery-vs-restart gap the
  // paper argues for lives: a restart re-executes the whole 6-interval
  // prefix on every node, while recovery re-executes at most one interval.
  constexpr int kKillAfterCheckpoints = 6;
  double faulted_s = 0;
  std::int64_t n = 0;
  double faulted_insns = 0;
  for (auto _ : state) {
    Stopwatch sw;
    const auto run = gridapp::run_heat(
        cfg, bench_cluster(), [&](cluster::Cluster& cl) {
          cl.enable_auto_resurrection(0.01);
          const auto& store = cl.ckpt_store();
          const std::string victim = cl.snapshot_name(1);
          for (int spin = 0; spin < 20000; ++spin) {
            if (store->latest_seq(victim) >=
                static_cast<std::uint64_t>(kKillAfterCheckpoints)) {
              break;
            }
            std::this_thread::sleep_for(std::chrono::microseconds(200));
          }
          cl.kill(1);
        });
    faulted_s += sw.seconds();
    if (!run.all_clean) state.SkipWithError("faulted run did not recover");
    faulted_insns = 0;
    for (const auto& node : run.nodes) {
      faulted_insns += static_cast<double>(node.instructions);
    }
    ++n;
  }
  faulted_s /= static_cast<double>(n);

  // Work lost to the failure under each policy, in VM instructions:
  // recovery re-executes ≤ 1 checkpoint interval; a restart at the same
  // point re-pays the whole prefix on every node.
  const double per_interval = fault_free_insns_ / 16.0;  // 160 steps / 10
  state.counters["fault_free_minsns"] = fault_free_insns_ / 1e6;
  state.counters["recovery_lost_minsns"] =
      (faulted_insns - fault_free_insns_) / 1e6;
  state.counters["restart_lost_minsns"] =
      per_interval * kKillAfterCheckpoints / 1e6;
  state.counters["fault_free_ms"] = fault_free_s * 1e3;
  state.counters["with_failure_ms"] = faulted_s * 1e3;
}

}  // namespace

BENCHMARK(BM_GridInterval)->Arg(0)->Arg(5)->Arg(10)->Arg(20)->Arg(40)
    ->Unit(benchmark::kMillisecond)->MinTime(0.5);
BENCHMARK(BM_GridRecoveryVsRestart)
    ->Unit(benchmark::kMillisecond)->MinTime(0.5);

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  // One-line machine-readable record for the perf trajectory, sourced
  // from the process-wide metrics registry (aggregate over every run).
  // incremental_write_ratio is the headline: of the logical bytes in
  // second-and-later checkpoints, the fraction actually uploaded (the
  // rest deduplicated against chunks the store already held).
  const auto snap = mojave::obs::MetricsRegistry::instance().snapshot();
  const auto counter = [&](const char* name) -> unsigned long long {
    const auto it = snap.counters.find(name);
    return it == snap.counters.end() ? 0ull : it->second;
  };
  const auto hist_q = [&](const char* name, double q) -> double {
    const auto it = snap.histograms.find(name);
    return it == snap.histograms.end() ? 0.0 : it->second.quantile_us(q);
  };
  const double logical_inc =
      static_cast<double>(counter("ckpt.bytes_logical_incremental"));
  const double written_inc =
      static_cast<double>(counter("ckpt.bytes_written_incremental"));
  const double ratio = logical_inc == 0 ? 1.0 : written_inc / logical_inc;
  std::printf(
      "BENCH_JSON {\"bench\":\"grid_checkpoint\","
      "\"checkpoints\":%llu,\"bytes_logical\":%llu,\"bytes_written\":%llu,"
      "\"bytes_logical_incremental\":%llu,"
      "\"bytes_written_incremental\":%llu,"
      "\"incremental_write_ratio\":%.4f,"
      "\"heat_fault_free_ms\":%.1f,"
      "\"chunks_written\":%llu,\"chunks_deduped\":%llu,"
      "\"chunks_evicted\":%llu,\"restore_fallbacks\":%llu,"
      "\"put_p50_us\":%.1f,\"put_p99_us\":%.1f,\"restore_p50_us\":%.1f}\n",
      counter("ckpt.manifests_written"), counter("ckpt.bytes_logical"),
      counter("ckpt.bytes_written"),
      counter("ckpt.bytes_logical_incremental"),
      counter("ckpt.bytes_written_incremental"), ratio,
      fault_free_wall_s_ * 1e3,
      counter("ckpt.chunks_written"), counter("ckpt.chunks_deduped"),
      counter("ckpt.chunks_evicted"), counter("ckpt.restore_fallbacks"),
      hist_q("ckpt.put_us", 0.5), hist_q("ckpt.put_us", 0.99),
      hist_q("ckpt.restore_us", 0.5));
  return 0;
}
