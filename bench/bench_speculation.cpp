// E3/E4/E5 — speculation entry, abort, and commit costs as a function of
// the fraction of the heap mutated during the speculation.
//
// Paper (Section 5), for a process with a 200 KB heap:
//   entry  ≈ 40 µs, independent of mutation;
//   abort  ≈ 120 µs at 10% mutation → 135 µs at 100%;
//   commit ≈  81 µs at 10% → 87 µs at 100%.
//
// Shape to reproduce: entry is flat in the mutation fraction; abort and
// commit grow mildly with it (the work is proportional to the number of
// copy-on-write records, not to heap size); abort costs more than commit;
// and all three are well below an OS context switch (bench_context_switch).
//
// Arg(0) = mutation percentage. The workload heap is 100 blocks × 128
// slots × 16 B ≈ 200 KB, as in the paper.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench/workloads.hpp"
#include "obs/metrics.hpp"
#include "support/stopwatch.hpp"

namespace {

using namespace mojave;
using mojave::Stopwatch;

constexpr std::size_t kBlocks = 100;
constexpr std::uint32_t kSlots = 128;  // ≈ 200 KB of payload total

struct SpecBench {
  runtime::Heap heap;
  spec::SpeculationManager spec{heap};
  bench::HeapWorkload workload;

  SpecBench() : heap(runtime::HeapConfig{.old_capacity = 32u << 20}) {
    workload = bench::fill_heap(heap, kBlocks, kSlots);
    heap.collect(true);  // steady state: everything in the old generation
  }
};

void BM_SpeculateEntry(benchmark::State& state) {
  SpecBench b;
  const int pct = static_cast<int>(state.range(0));
  double entry_s = 0;
  std::int64_t n = 0;
  for (auto _ : state) {
    // Mutation happens *around* the entry (inside the previous level);
    // entry cost must not depend on it. Timed with a manual stopwatch so
    // the surrounding work cannot contaminate the number.
    Stopwatch sw;
    const SpecLevel level = b.spec.speculate({});
    entry_s += sw.seconds();
    ++n;
    bench::mutate_fraction(b.heap, b.workload, pct);
    b.spec.rollback(level, 0, /*retry=*/false);
  }
  state.counters["mutation_pct"] = pct;
  state.counters["entry_us"] = entry_s / static_cast<double>(n) * 1e6;
}

void BM_SpeculateAbort(benchmark::State& state) {
  SpecBench b;
  const int pct = static_cast<int>(state.range(0));
  double abort_s = 0;
  std::int64_t n = 0;
  std::uint64_t preserved = 0;
  for (auto _ : state) {
    state.PauseTiming();
    const SpecLevel level = b.spec.speculate({});
    bench::mutate_fraction(b.heap, b.workload, pct);
    preserved = b.spec.preserved_blocks();
    state.ResumeTiming();
    Stopwatch sw;
    b.spec.rollback(level, 0, /*retry=*/false);
    abort_s += sw.seconds();
    ++n;
  }
  state.counters["mutation_pct"] = pct;
  state.counters["abort_us"] = abort_s / static_cast<double>(n) * 1e6;
  state.counters["cow_blocks"] = static_cast<double>(preserved);
}

void BM_SpeculateCommit(benchmark::State& state) {
  SpecBench b;
  const int pct = static_cast<int>(state.range(0));
  double commit_s = 0;
  std::int64_t n = 0;
  for (auto _ : state) {
    state.PauseTiming();
    const SpecLevel level = b.spec.speculate({});
    bench::mutate_fraction(b.heap, b.workload, pct);
    state.ResumeTiming();
    Stopwatch sw;
    b.spec.commit(level);
    commit_s += sw.seconds();
    ++n;
    // Keep the heap from growing without bound: collect occasionally.
    if (n % 64 == 0) {
      state.PauseTiming();
      b.heap.collect(true);
      state.ResumeTiming();
    }
  }
  state.counters["mutation_pct"] = pct;
  state.counters["commit_us"] = commit_s / static_cast<double>(n) * 1e6;
}

/// Nested levels: deep speculation stacks with out-of-order commits, the
/// general case of Section 4.3.1.
void BM_NestedSpeculation(benchmark::State& state) {
  SpecBench b;
  const auto depth = static_cast<std::uint32_t>(state.range(0));
  for (auto _ : state) {
    for (std::uint32_t i = 0; i < depth; ++i) {
      (void)b.spec.speculate({});
      bench::mutate_fraction(b.heap, b.workload, 5);
    }
    // Commit oldest-first: every commit folds into the level below.
    for (std::uint32_t i = 0; i < depth; ++i) b.spec.commit(1);
  }
  state.counters["depth"] = depth;
}

}  // namespace

BENCHMARK(BM_SpeculateEntry)->Arg(0)->Arg(10)->Arg(50)->Arg(100)
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_SpeculateAbort)->Arg(10)->Arg(25)->Arg(50)->Arg(75)->Arg(100)
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_SpeculateCommit)->Arg(10)->Arg(25)->Arg(50)->Arg(75)->Arg(100)
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_NestedSpeculation)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMicrosecond);

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  // One-line machine-readable record for the perf trajectory, sourced
  // from the process-wide metrics registry (aggregate over every run).
  const auto snap = mojave::obs::MetricsRegistry::instance().snapshot();
  const auto counter = [&](const char* name) -> unsigned long long {
    const auto it = snap.counters.find(name);
    return it == snap.counters.end() ? 0ull : it->second;
  };
  const auto hist_q = [&](const char* name, double q) -> double {
    const auto it = snap.histograms.find(name);
    return it == snap.histograms.end() ? 0.0 : it->second.quantile_us(q);
  };
  std::printf(
      "BENCH_JSON {\"bench\":\"speculation\",\"speculates\":%llu,"
      "\"commits\":%llu,\"rollbacks\":%llu,\"blocks_preserved\":%llu,"
      "\"bytes_preserved\":%llu,\"cow_clones\":%llu,"
      "\"gc_pause_p50_us\":%.1f,\"gc_pause_p99_us\":%.1f}\n",
      counter("spec.speculates"), counter("spec.commits"),
      counter("spec.rollbacks"), counter("spec.blocks_preserved"),
      counter("spec.bytes_preserved"), counter("heap.cow_clones"),
      hist_q("gc.pause_us", 0.5), hist_q("gc.pause_us", 0.99));
  return 0;
}
