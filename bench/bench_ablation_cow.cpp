// A1 — copy-on-write rollback vs. checkpoint-file rollback.
//
// Paper (Section 4.3): "This rollback operation can be expressed with
// process migration by having a process write a checkpoint file each time
// it enters a new speculation ... since the migration mechanism recompiles
// the program, and the entire process state must be reconstructed, this
// operation can be very expensive. Taking the checkpoint is expensive,
// since the entire state must be written to a file, even parts of the
// state that have not changed ... By contrast, speculation uses a
// copy-on-write mechanism to keep track of modified state ... and does not
// need to recompile the code."
//
// Shape to reproduce: COW abort cost scales with the *mutated* fraction
// and stays orders of magnitude below checkpoint-file save+restore, which
// pays for the whole heap plus recompilation regardless of mutation.
#include <benchmark/benchmark.h>

#include <filesystem>

#include "bench/workloads.hpp"
#include "migrate/image.hpp"
#include "migrate/migrator.hpp"

namespace {

using namespace mojave;

/// COW path: enter a level, mutate pct% of the blocks, roll back.
void BM_RollbackCow(benchmark::State& state) {
  const int pct = static_cast<int>(state.range(0));
  runtime::Heap heap(runtime::HeapConfig{.old_capacity = 32u << 20});
  spec::SpeculationManager spec(heap);
  auto workload = bench::fill_heap(heap, 100, 128);  // ≈ 200 KB
  heap.collect(true);

  for (auto _ : state) {
    const SpecLevel level = spec.speculate({});
    bench::mutate_fraction(heap, workload, pct);
    spec.rollback(level, 0, /*retry=*/false);
  }
  state.counters["mutation_pct"] = pct;
}

/// Checkpoint-file path for the same logical operation: write the full
/// state image at "speculation entry", mutate, then restore by unpacking
/// the file (which re-verifies and recompiles the program).
void BM_RollbackCheckpointFile(benchmark::State& state) {
  const int pct = static_cast<int>(state.range(0));
  auto workload = bench::make_migratable_process(200);  // ≈ 200 KB heap
  const auto path =
      std::filesystem::temp_directory_path() / "mojave_ablation_cow.img";

  // Blocks to mutate between checkpoint and rollback.
  std::vector<BlockIndex> blocks;
  workload.process->heap().table().for_each_entry(
      [&](BlockIndex idx, runtime::Block*& b) {
        if (b->h.kind == runtime::BlockKind::kTagged && b->h.count >= 1) {
          blocks.push_back(idx);
        }
      });

  for (auto _ : state) {
    // "Enter the speculation": save the full state to a file.
    auto packed = migrate::pack_process(
        *workload.process, workload.hook->label(),
        workload.hook->resume_fun(), workload.hook->resume_args(),
        migrate::ImageKind::kFir);
    migrate::Migrator::write_image_file(path, packed.bytes);

    // Mutate pct% of blocks (skipping entries the pack-time collection
    // reclaimed, e.g. migrate_env blocks from previous iterations).
    const std::size_t n =
        blocks.size() * static_cast<std::size_t>(pct) / 100;
    for (std::size_t i = 0; i < n; ++i) {
      if (workload.process->heap().table().is_free(blocks[i])) continue;
      workload.process->heap().write_slot(blocks[i], 0,
                                          runtime::Value::from_int(5));
    }

    // "Abort": reconstruct everything from the file.
    const auto bytes = migrate::Migrator::read_image_file(path);
    auto unpacked = migrate::unpack_process(bytes);
    benchmark::DoNotOptimize(unpacked.process.get());
  }
  state.counters["mutation_pct"] = pct;
}

}  // namespace

BENCHMARK(BM_RollbackCow)->Arg(10)->Arg(50)->Arg(100)
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_RollbackCheckpointFile)->Arg(10)->Arg(50)->Arg(100)
    ->Unit(benchmark::kMicrosecond);

BENCHMARK_MAIN();
