// A3 — compaction order and data locality.
//
// Paper (Section 4): the collector is compacting because compaction
// "preserves temporal data locality. Two blocks that are allocated near
// each other temporally are more likely to be used together ... thereby
// improving the cache performance over breadth-first copying collectors."
//
// Shape to reproduce:
//   * traversing the live set in allocation order is faster after a
//     sliding (address-order) compaction than on a fragmented heap;
//   * address-order evacuation beats breadth-first (Cheney-style)
//     evacuation for allocation-order access patterns.
#include <benchmark/benchmark.h>

#include "bench/workloads.hpp"

namespace {

using namespace mojave;

/// Allocate `live` blocks interleaved with short-lived garbage so the live
/// set ends up sparse in the arena.
bench::HeapWorkload churn(runtime::Heap& heap, std::size_t live) {
  bench::HeapWorkload w;
  w.roots = std::make_unique<runtime::RootSet>(heap);
  Rng rng(11);
  for (std::size_t i = 0; i < live; ++i) {
    // Garbage between live allocations fragments the address order.
    for (int g = 0; g < 7; ++g) {
      benchmark::DoNotOptimize(heap.alloc_tagged(24));
    }
    const BlockIndex idx = heap.alloc_tagged(24);
    w.blocks.push_back(idx);
    w.roots->pin(runtime::Value::from_ptr(idx, 0));
    for (std::uint32_t s = 0; s < 24; ++s) {
      heap.write_slot(idx, s, runtime::Value::from_int(
                                  static_cast<std::int64_t>(rng.next())));
    }
  }
  return w;
}

std::int64_t traverse(runtime::Heap& heap,
                      const std::vector<BlockIndex>& blocks) {
  std::int64_t sum = 0;
  for (BlockIndex idx : blocks) {
    const runtime::Block* b = heap.deref(idx);
    const runtime::Value* s = b->slots();
    for (std::uint32_t i = 0; i < b->h.count; ++i) {
      if (s[i].is(runtime::Tag::kInt)) sum += s[i].as_int();
    }
  }
  return sum;
}

constexpr std::size_t kLive = 20000;

void BM_TraverseFragmented(benchmark::State& state) {
  runtime::Heap heap(runtime::HeapConfig{
      .young_capacity = 64u << 20, .old_capacity = 128u << 20,
      .generational = false});
  // Disable collection side effects: with generational off, we simply
  // never call collect, leaving garbage interleaved with the live set.
  auto w = churn(heap, kLive);
  std::int64_t sum = 0;
  for (auto _ : state) sum += traverse(heap, w.blocks);
  benchmark::DoNotOptimize(sum);
  state.counters["heap_used_mb"] =
      static_cast<double>(heap.young_used() + heap.old_used()) / 1e6;
}

void BM_TraverseAfterSlidingCompaction(benchmark::State& state) {
  runtime::Heap heap(runtime::HeapConfig{
      .young_capacity = 64u << 20, .old_capacity = 128u << 20,
      .generational = false,
      .evacuation_order = runtime::EvacuationOrder::kAddress});
  auto w = churn(heap, kLive);
  heap.collect(/*major=*/true);  // slide live blocks together, in order
  std::int64_t sum = 0;
  for (auto _ : state) sum += traverse(heap, w.blocks);
  benchmark::DoNotOptimize(sum);
  state.counters["heap_used_mb"] =
      static_cast<double>(heap.young_used() + heap.old_used()) / 1e6;
}

void BM_TraverseAfterBreadthFirstCopy(benchmark::State& state) {
  runtime::Heap heap(runtime::HeapConfig{
      .young_capacity = 64u << 20, .old_capacity = 128u << 20,
      .generational = false,
      .evacuation_order = runtime::EvacuationOrder::kBreadthFirst});
  auto w = churn(heap, kLive);
  heap.collect(/*major=*/true);  // Cheney-style reachability order
  std::int64_t sum = 0;
  for (auto _ : state) sum += traverse(heap, w.blocks);
  benchmark::DoNotOptimize(sum);
}

/// Collector throughput itself: minor vs major cycles under steady
/// allocation (the generational design's payoff).
void BM_MinorCollection(benchmark::State& state) {
  runtime::Heap heap(runtime::HeapConfig{.young_capacity = 1u << 20,
                                         .old_capacity = 256u << 20});
  runtime::RootSet roots(heap);
  // A modest stable live set plus a nursery full of garbage per cycle.
  for (int i = 0; i < 64; ++i) {
    roots.pin(runtime::Value::from_ptr(heap.alloc_tagged(32), 0));
  }
  for (auto _ : state) {
    state.PauseTiming();
    for (int i = 0; i < 2000; ++i) {
      benchmark::DoNotOptimize(heap.alloc_tagged(16));
    }
    state.ResumeTiming();
    heap.collect(/*major=*/false);
  }
  state.counters["minor_gcs"] =
      static_cast<double>(heap.stats().gc.minor_collections);
}

}  // namespace

BENCHMARK(BM_TraverseFragmented)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_TraverseAfterSlidingCompaction)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_TraverseAfterBreadthFirstCopy)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_MinorCollection)->Unit(benchmark::kMicrosecond);

BENCHMARK_MAIN();
