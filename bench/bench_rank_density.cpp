// E9 — rank density: how many ranks one agent hosts, and what a rank
// costs, now that ranks are fibers on an event loop instead of kernel
// threads (see docs/SCALING.md).
//
// Two runs of the same communication-bound heat stencil (one grid row
// per rank, so per-rank work is constant across densities):
//
//   * small: 4 ranks over 2 agents — the comfortable thread-per-rank
//     regime the old design handled;
//   * dense: 400 ranks over 2 agents — 200 ranks per event-loop core,
//     100x the small run's density, far past where a thread-per-rank
//     agent collapses under stacks and context switches.
//
// Round-robin placement puts every halo neighbour on the *other* agent,
// so each timestep pushes every exchange through the wire — exactly the
// load the per-(peer, tick) frame coalescing exists for. The BENCH_JSON
// line reports ranks/core, the coalesce ratio (frames per flushed
// batch), and the per-rank wall-time cost of both regimes; the perf gate
// tracks density and coalescing as headline metrics.
#include <benchmark/benchmark.h>

#include <sys/resource.h>

#include <chrono>
#include <cstdio>
#include <filesystem>

#include "dnode/agent.hpp"
#include "dnode/coord.hpp"
#include "gridapp/heat.hpp"
#include "obs/metrics.hpp"

namespace {

namespace fs = std::filesystem;
using namespace mojave;

constexpr std::uint32_t kAgents = 2;
constexpr std::uint32_t kSmallRanks = 4;
constexpr std::uint32_t kDenseRanks = 400;

// Per-rank wall cost (ms) of the last completed run at each density,
// published in BENCH_JSON after the harness finishes.
double g_perrank_small_ms = 0;
double g_perrank_dense_ms = 0;

gridapp::HeatConfig density_grid(std::uint32_t ranks) {
  gridapp::HeatConfig cfg;
  cfg.nodes = ranks;
  cfg.rows = ranks;  // one row band per rank: constant per-rank work
  cfg.cols = 16;
  cfg.steps = 10;
  cfg.checkpoint_interval = 0;
  return cfg;
}

fs::path bench_storage() {
  const fs::path dir = fs::temp_directory_path() / "mojave_bench_density";
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

/// One full session: 2 agents, `ranks` fibers round-robined across them,
/// run to completion. Returns wall seconds for the compute phase (launch
/// through last RESULT), excluding agent/coordinator setup and teardown.
double run_density(std::uint32_t ranks, const fs::path& storage,
                   benchmark::State& state) {
  dnode::AgentConfig acfg;
  acfg.storage_root = storage;
  // Hundreds of co-hosted heaps: keep each rank's arenas small (the heat
  // band is a few KB) so the dense run measures scheduling, not paging.
  acfg.heap.young_capacity = 64 * 1024;
  acfg.heap.old_capacity = 1024 * 1024;
  dnode::NodeAgent a0(acfg), a1(acfg);

  dnode::CoordinatorConfig ccfg;
  ccfg.agents = {{"127.0.0.1", a0.port()}, {"127.0.0.1", a1.port()}};
  ccfg.num_ranks = ranks;
  ccfg.recv_timeout_seconds = 60.0;
  dnode::Coordinator coord(std::move(ccfg));

  const auto start = std::chrono::steady_clock::now();
  coord.launch_spmd(gridapp::heat_program(density_grid(ranks)));
  if (!coord.wait_all(180.0)) {
    state.SkipWithError("density run hung");
    return 0;
  }
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  for (const auto& r : coord.results()) {
    if (r.result_kind != 0) {
      state.SkipWithError("rank failed");
      return 0;
    }
  }
  coord.shutdown_agents();
  return wall;
}

void BM_RankDensitySmall(benchmark::State& state) {
  const fs::path storage = bench_storage();
  for (auto _ : state) {
    const double wall = run_density(kSmallRanks, storage, state);
    g_perrank_small_ms = wall * 1e3 / kSmallRanks;
  }
  state.counters["perrank_ms"] = g_perrank_small_ms;
}

void BM_RankDensityDense(benchmark::State& state) {
  const fs::path storage = bench_storage();
  for (auto _ : state) {
    const double wall = run_density(kDenseRanks, storage, state);
    g_perrank_dense_ms = wall * 1e3 / kDenseRanks;
  }
  state.counters["perrank_ms"] = g_perrank_dense_ms;
  state.counters["ranks_per_core"] =
      static_cast<double>(kDenseRanks) / kAgents;
}

}  // namespace

BENCHMARK(BM_RankDensitySmall)->Unit(benchmark::kMillisecond)->Iterations(3);
BENCHMARK(BM_RankDensityDense)->Unit(benchmark::kMillisecond)->Iterations(2);

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  const auto snap = mojave::obs::MetricsRegistry::instance().snapshot();
  const auto counter = [&](const char* name) -> unsigned long long {
    const auto it = snap.counters.find(name);
    return it == snap.counters.end() ? 0ull : it->second;
  };
  const double frames_out =
      static_cast<double>(counter("net.coalesce.frames_out"));
  const double batches =
      static_cast<double>(counter("net.coalesce.flush_batches"));
  const double coalesce_ratio = batches > 0 ? frames_out / batches : 0;
  const double cost_ratio = g_perrank_small_ms > 0
                                ? g_perrank_dense_ms / g_perrank_small_ms
                                : 0;
  // Peak RSS covers the whole process; the dense run's 400 co-hosted
  // ranks dominate it, so rss/ranks bounds the per-fiber memory cost.
  struct rusage ru {};
  ::getrusage(RUSAGE_SELF, &ru);
  const double peak_rss_mb = static_cast<double>(ru.ru_maxrss) / 1024.0;
  std::printf(
      "BENCH_JSON {\"bench\":\"rank_density\","
      "\"ranks_per_core\":%g,\"coalesce_ratio\":%.3f,"
      "\"perrank_small_ms\":%.3f,\"perrank_dense_ms\":%.3f,"
      "\"perrank_cost_ratio\":%.3f,\"peak_rss_mb\":%.1f,"
      "\"coalesce_frames_out\":%llu,\"coalesce_batches\":%llu,"
      "\"coalesce_batched_frames\":%llu,\"coalesce_zero_copy\":%llu,"
      "\"sched_slices\":%llu,\"sched_blocks\":%llu,\"sched_wakes\":%llu}\n",
      static_cast<double>(kDenseRanks) / kAgents, coalesce_ratio,
      g_perrank_small_ms, g_perrank_dense_ms, cost_ratio, peak_rss_mb,
      counter("net.coalesce.frames_out"),
      counter("net.coalesce.flush_batches"),
      counter("net.coalesce.batched_frames"),
      counter("net.coalesce.zero_copy_frames"), counter("sched.slices"),
      counter("sched.blocks"), counter("sched.wakes"));
  return 0;
}
