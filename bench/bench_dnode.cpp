// E8 — the distributed node runtime: what the real-TCP data plane costs
// relative to the in-process simulated cluster on the same computation.
//
// Both benchmarks run the Figure-2 heat grid; one on `cluster::Cluster`
// (shared-memory SimNetwork), one across two in-process NodeAgents
// connected by real sockets with the full wire protocol (framing,
// checksums, DEP_RECORD round-trips to the coordinator). The gap is the
// price of distribution — the paper's LAN numbers, shrunk to loopback.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <filesystem>

#include "dnode/agent.hpp"
#include "dnode/coord.hpp"
#include "gridapp/heat.hpp"
#include "obs/metrics.hpp"

namespace {

namespace fs = std::filesystem;
using namespace mojave;

gridapp::HeatConfig bench_grid() {
  gridapp::HeatConfig cfg;
  cfg.nodes = 4;
  cfg.rows = 16;
  cfg.cols = 16;
  cfg.steps = 40;
  cfg.checkpoint_interval = 10;
  return cfg;
}

fs::path bench_storage() {
  const fs::path dir = fs::temp_directory_path() / "mojave_bench_dnode";
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

/// Baseline: the same grid on the single-process simulated cluster.
void BM_HeatSimulatedCluster(benchmark::State& state) {
  const auto cfg = bench_grid();
  double insns = 0;
  for (auto _ : state) {
    cluster::ClusterConfig ccfg;
    ccfg.recv_timeout_seconds = 30.0;
    const auto run = gridapp::run_heat(cfg, ccfg);
    if (!run.all_clean) state.SkipWithError("simulated run failed");
    benchmark::DoNotOptimize(run.sums.data());
    insns = 0;
    for (const auto& node : run.nodes) {
      insns += static_cast<double>(node.instructions);
    }
  }
  state.counters["vm_minsns"] = insns / 1e6;
}

/// The distributed runtime: two agents, real TCP, full join protocol.
void BM_HeatTwoNodeAgents(benchmark::State& state) {
  const auto cfg = bench_grid();
  const fs::path storage = bench_storage();
  double insns = 0;
  for (auto _ : state) {
    dnode::AgentConfig acfg;
    acfg.storage_root = storage;
    dnode::NodeAgent a0(acfg), a1(acfg);

    dnode::CoordinatorConfig ccfg;
    ccfg.agents = {{"127.0.0.1", a0.port()}, {"127.0.0.1", a1.port()}};
    ccfg.num_ranks = cfg.nodes;
    ccfg.recv_timeout_seconds = 30.0;
    dnode::Coordinator coord(std::move(ccfg));
    coord.launch_spmd(gridapp::heat_program(cfg));
    if (!coord.wait_all(120.0)) state.SkipWithError("distributed run hung");
    insns = 0;
    for (const auto& r : coord.results()) {
      if (r.result_kind != 0) state.SkipWithError("rank failed");
      insns += static_cast<double>(r.instructions);
    }
    coord.shutdown_agents();
  }
  state.counters["vm_minsns"] = insns / 1e6;
}

}  // namespace

BENCHMARK(BM_HeatSimulatedCluster)
    ->Unit(benchmark::kMillisecond)->MinTime(0.5);
BENCHMARK(BM_HeatTwoNodeAgents)
    ->Unit(benchmark::kMillisecond)->MinTime(0.5);

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  // One-line machine-readable record for the perf trajectory: the wire
  // traffic the distributed runs generated, from the metrics registry.
  const auto snap = mojave::obs::MetricsRegistry::instance().snapshot();
  const auto counter = [&](const char* name) -> unsigned long long {
    const auto it = snap.counters.find(name);
    return it == snap.counters.end() ? 0ull : it->second;
  };
  std::printf(
      "BENCH_JSON {\"bench\":\"dnode\","
      "\"launches\":%llu,\"data_frames_out\":%llu,\"data_frames_in\":%llu,"
      "\"data_forwards\":%llu,\"dep_records\":%llu,\"replay_requests\":%llu,"
      "\"heartbeats\":%llu,\"corrupt_frames\":%llu,\"link_failures\":%llu}\n",
      counter("node.launches"), counter("node.data_frames_out"),
      counter("node.data_frames_in"), counter("node.data_forwards"),
      counter("dspec.dep_records"), counter("dspec.replay_requests"),
      counter("node.heartbeats"), counter("node.corrupt_frames"),
      counter("node.link_failures"));
  return 0;
}
