// E1/E2 — whole-process migration cost and its breakdown.
//
// Paper (Section 5): "We observed a migration time of 4 seconds for a
// process with a 1MB heap in an untrusted environment that required
// re-compilation of the FIR at the destination. Of this 10% represented
// the actual network transfer and the rest was due to re-compilation. For
// the same process, the binary migration time was under 1 second, of which
// 30% represented the data transfer from source to destination."
//
// Shape to reproduce: untrusted (FIR) migration is dominated by
// destination-side verification + recompilation, not by the wire; trusted
// (binary) migration is several times faster and transfer-bound to a much
// larger degree. Absolute numbers differ (2007 dual-700MHz vs this host;
// native codegen vs bytecode lowering); the network term uses the paper's
// 100 Mbps link via the simulated-network cost model, plus a real loopback
// TCP transfer for reference.
//
// Rows: heap size ∈ {200 KB, 1 MB, 5 MB} × {FIR, binary}. Counters give
// the phase breakdown in microseconds and the transfer fraction.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <set>
#include <thread>

#include "bench/workloads.hpp"
#include "migrate/image.hpp"
#include "migrate/wire.hpp"
#include "net/chaos.hpp"
#include "net/retry.hpp"
#include "net/sim.hpp"
#include "net/tcp.hpp"
#include "obs/metrics.hpp"
#include "support/error.hpp"
#include "support/stopwatch.hpp"

namespace {

using namespace mojave;
using mojave::Stopwatch;

void run_migration(benchmark::State& state, migrate::ImageKind kind) {
  const auto heap_kb = static_cast<std::size_t>(state.range(0));
  const auto code_funcs = static_cast<std::size_t>(state.range(1));
  auto workload = bench::make_migratable_process(heap_kb, code_funcs);
  net::SimNetwork net(2);  // the paper's 100 Mbps link model

  // A loopback sink that acks frames, to measure a real TCP leg too.
  net::TcpListener sink(0);
  std::thread sink_thread([&] {
    while (auto stream = sink.accept()) {
      while (auto frame = stream->recv_frame()) {
        stream->send_frame(
            std::vector<std::byte>{std::byte{'O'}, std::byte{'K'}});
      }
    }
  });

  double pack_s = 0, unpack_s = 0, recompile_s = 0, typecheck_s = 0,
         sim_transfer_s = 0, tcp_transfer_s = 0;
  std::size_t image_bytes = 0;
  std::int64_t iterations = 0;

  for (auto _ : state) {
    Stopwatch total;
    Stopwatch sw;
    auto packed = migrate::pack_process(
        *workload.process, workload.hook->label(),
        workload.hook->resume_fun(), workload.hook->resume_args(), kind);
    pack_s += sw.seconds();
    image_bytes = packed.bytes.size();

    // Network leg 1: the paper's 100 Mbps wire (simulated cost model).
    sim_transfer_s += net.transfer_seconds(packed.bytes.size());

    // Network leg 2: real loopback TCP (connection setup + streaming).
    sw.reset();
    {
      auto stream = net::TcpStream::connect("127.0.0.1", sink.port());
      stream.send_frame(packed.bytes);
      auto ack = stream.recv_frame();
      benchmark::DoNotOptimize(ack);
    }
    tcp_transfer_s += sw.seconds();

    sw.reset();
    auto unpacked = migrate::unpack_process(packed.bytes);
    unpack_s += sw.seconds();
    recompile_s += unpacked.breakdown.recompile_seconds;
    typecheck_s += unpacked.breakdown.typecheck_seconds;
    benchmark::DoNotOptimize(unpacked.process.get());
    ++iterations;
  }
  sink.shutdown();
  sink_thread.join();

  const double n = static_cast<double>(iterations);
  const double total_s = (pack_s + sim_transfer_s + unpack_s) / n;
  state.counters["code_funcs"] = static_cast<double>(code_funcs);
  state.counters["image_kb"] =
      static_cast<double>(image_bytes) / 1024.0;
  state.counters["pack_us"] = pack_s / n * 1e6;
  state.counters["net100mbps_us"] = sim_transfer_s / n * 1e6;
  state.counters["tcp_loopback_us"] = tcp_transfer_s / n * 1e6;
  state.counters["unpack_us"] = unpack_s / n * 1e6;
  state.counters["verify_us"] = typecheck_s / n * 1e6;
  state.counters["recompile_us"] = recompile_s / n * 1e6;
  state.counters["total_us"] = total_s * 1e6;
  state.counters["transfer_frac"] = sim_transfer_s / n / total_s;
  state.counters["recompile_frac"] =
      (recompile_s + typecheck_s) / n / total_s;
}

// E3 — resilient-transport latency under packet loss.
//
// The full idempotent handshake (offer/GO, image/ack — migrate/wire.hpp)
// runs through a ChaosProxy that drops request and reply frames with the
// given probability, and the client retries under the production
// RetryPolicy. Measures what a lossy WAN costs a migration end to end:
// each retry pays a reconnect plus a jittered backoff, and a retry after
// a lost ack is answered DU from the dedup window instead of re-shipping.
void BM_MigrationResilient(benchmark::State& state) {
  const double drop = static_cast<double>(state.range(0)) / 100.0;
  const std::size_t image_kb = 64;

  // A v2-handshake sink with a dedup window, minus unpack/resume — so the
  // numbers isolate the transport, not destination recompilation.
  net::TcpListener sink(0);
  std::thread sink_thread([&] {
    std::set<std::uint64_t> committed;
    while (auto stream = sink.accept()) {
      try {
        stream->set_io_deadline(2.0);
        const auto offer = stream->recv_frame();
        if (!offer.has_value()) continue;
        const auto id = migrate::decode_offer(*offer);
        if (!id.has_value()) continue;
        if (committed.count(*id) != 0) {
          stream->send_frame(migrate::make_reply(migrate::kReplyDup));
          continue;
        }
        stream->send_frame(migrate::make_reply(migrate::kReplyGo));
        const auto image = stream->recv_frame();
        if (!image.has_value()) continue;
        committed.insert(*id);
        stream->send_frame(migrate::make_reply(migrate::kReplyOk));
      } catch (const NetError&) {
        // proxy cut the connection mid-exchange; the client will retry
      }
    }
  });

  net::ProxyFaults faults;
  faults.seed = 1000 + state.range(0);
  faults.drop_request = drop;
  faults.drop_reply = drop;
  net::ChaosProxy proxy("127.0.0.1", sink.port(), faults);

  net::RetryPolicy policy;
  policy.max_attempts = 16;
  policy.initial_backoff_seconds = 0.0005;
  policy.max_backoff_seconds = 0.004;
  policy.overall_deadline_seconds = 10.0;
  policy.connect_timeout_seconds = 2.0;
  policy.io_timeout_seconds = 2.0;

  const std::vector<std::byte> image(image_kb * 1024, std::byte{0x5a});
  auto& hist = obs::MetricsRegistry::instance().histogram(
      "bench.mig_drop" + std::to_string(state.range(0)) + "_us");
  std::uint64_t retries = 0;

  for (auto _ : state) {
    Stopwatch total;
    const std::uint64_t id = migrate::fresh_migration_id();
    net::Backoff backoff(policy, id);
    while (true) {
      try {
        auto stream = net::TcpStream::connect("127.0.0.1", proxy.port(),
                                              policy.deadlines());
        stream.send_frame(migrate::encode_offer(id));
        const auto hello = stream.recv_frame();
        if (!hello.has_value()) throw NetError("closed in handshake");
        if (migrate::reply_is(*hello, migrate::kReplyDup)) break;
        if (!migrate::reply_is(*hello, migrate::kReplyGo)) {
          throw NetError("unexpected hello");
        }
        stream.send_frame(image);
        const auto ack = stream.recv_frame();
        if (!ack.has_value()) throw NetError("lost ack");
        break;
      } catch (const NetError&) {
        if (!backoff.retry_after_failure()) break;  // out of budget
        ++retries;
      }
    }
    hist.record_seconds(total.seconds());
  }
  sink.shutdown();
  proxy.stop();
  sink_thread.join();

  state.counters["drop_pct"] = static_cast<double>(state.range(0));
  state.counters["retries"] = static_cast<double>(retries);
  state.counters["image_kb"] = static_cast<double>(image_kb);
}

void BM_MigrationFir(benchmark::State& state) {
  run_migration(state, migrate::ImageKind::kFir);
}

void BM_MigrationBinary(benchmark::State& state) {
  run_migration(state, migrate::ImageKind::kBinary);
}

}  // namespace

// {live heap KB, application functions}. 800 straight-line functions is a
// small scientific application's worth of code.
BENCHMARK(BM_MigrationFir)
    ->Args({200, 800})->Args({1024, 800})->Args({5120, 800})
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_MigrationBinary)
    ->Args({200, 800})->Args({1024, 800})->Args({5120, 800})
    ->Unit(benchmark::kMillisecond);
// {drop percent}: packet loss injected on both directions of the proxy.
BENCHMARK(BM_MigrationResilient)
    ->Args({0})->Args({1})->Args({5})
    ->Unit(benchmark::kMillisecond);

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  // One-line machine-readable record for the perf trajectory, sourced
  // from the process-wide metrics registry (aggregate over every run).
  const auto snap = mojave::obs::MetricsRegistry::instance().snapshot();
  const auto counter = [&](const char* name) -> unsigned long long {
    const auto it = snap.counters.find(name);
    return it == snap.counters.end() ? 0ull : it->second;
  };
  const auto hist_q = [&](const char* name, double q) -> double {
    const auto it = snap.histograms.find(name);
    return it == snap.histograms.end() ? 0.0 : it->second.quantile_us(q);
  };
  std::printf(
      "BENCH_JSON {\"bench\":\"migration\",\"images_packed\":%llu,"
      "\"image_bytes_packed\":%llu,\"pack_p50_us\":%.1f,\"pack_p99_us\":%.1f,"
      "\"unpack_p50_us\":%.1f,\"recompile_p50_us\":%.1f,"
      "\"gc_pause_p50_us\":%.1f,\"gc_pause_p99_us\":%.1f,"
      "\"mig_drop0_p50_us\":%.1f,\"mig_drop1_p50_us\":%.1f,"
      "\"mig_drop5_p50_us\":%.1f,\"mig_drop5_p99_us\":%.1f}\n",
      counter("migrate.images_packed"), counter("migrate.image_bytes_packed"),
      hist_q("migrate.pack_us", 0.5), hist_q("migrate.pack_us", 0.99),
      hist_q("migrate.unpack_us", 0.5), hist_q("migrate.recompile_us", 0.5),
      hist_q("gc.pause_us", 0.5), hist_q("gc.pause_us", 0.99),
      hist_q("bench.mig_drop0_us", 0.5), hist_q("bench.mig_drop1_us", 0.5),
      hist_q("bench.mig_drop5_us", 0.5), hist_q("bench.mig_drop5_us", 0.99));
  return 0;
}
