// E1/E2 — whole-process migration cost and its breakdown.
//
// Paper (Section 5): "We observed a migration time of 4 seconds for a
// process with a 1MB heap in an untrusted environment that required
// re-compilation of the FIR at the destination. Of this 10% represented
// the actual network transfer and the rest was due to re-compilation. For
// the same process, the binary migration time was under 1 second, of which
// 30% represented the data transfer from source to destination."
//
// Shape to reproduce: untrusted (FIR) migration is dominated by
// destination-side verification + recompilation, not by the wire; trusted
// (binary) migration is several times faster and transfer-bound to a much
// larger degree. Absolute numbers differ (2007 dual-700MHz vs this host;
// native codegen vs bytecode lowering); the network term uses the paper's
// 100 Mbps link via the simulated-network cost model, plus a real loopback
// TCP transfer for reference.
//
// Rows: heap size ∈ {200 KB, 1 MB, 5 MB} × {FIR, binary}. Counters give
// the phase breakdown in microseconds and the transfer fraction.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <thread>

#include "bench/workloads.hpp"
#include "migrate/image.hpp"
#include "net/sim.hpp"
#include "net/tcp.hpp"
#include "obs/metrics.hpp"
#include "support/stopwatch.hpp"

namespace {

using namespace mojave;
using mojave::Stopwatch;

void run_migration(benchmark::State& state, migrate::ImageKind kind) {
  const auto heap_kb = static_cast<std::size_t>(state.range(0));
  const auto code_funcs = static_cast<std::size_t>(state.range(1));
  auto workload = bench::make_migratable_process(heap_kb, code_funcs);
  net::SimNetwork net(2);  // the paper's 100 Mbps link model

  // A loopback sink that acks frames, to measure a real TCP leg too.
  net::TcpListener sink(0);
  std::thread sink_thread([&] {
    while (auto stream = sink.accept()) {
      while (auto frame = stream->recv_frame()) {
        stream->send_frame(
            std::vector<std::byte>{std::byte{'O'}, std::byte{'K'}});
      }
    }
  });

  double pack_s = 0, unpack_s = 0, recompile_s = 0, typecheck_s = 0,
         sim_transfer_s = 0, tcp_transfer_s = 0;
  std::size_t image_bytes = 0;
  std::int64_t iterations = 0;

  for (auto _ : state) {
    Stopwatch total;
    Stopwatch sw;
    auto packed = migrate::pack_process(
        *workload.process, workload.hook->label(),
        workload.hook->resume_fun(), workload.hook->resume_args(), kind);
    pack_s += sw.seconds();
    image_bytes = packed.bytes.size();

    // Network leg 1: the paper's 100 Mbps wire (simulated cost model).
    sim_transfer_s += net.transfer_seconds(packed.bytes.size());

    // Network leg 2: real loopback TCP (connection setup + streaming).
    sw.reset();
    {
      auto stream = net::TcpStream::connect("127.0.0.1", sink.port());
      stream.send_frame(packed.bytes);
      auto ack = stream.recv_frame();
      benchmark::DoNotOptimize(ack);
    }
    tcp_transfer_s += sw.seconds();

    sw.reset();
    auto unpacked = migrate::unpack_process(packed.bytes);
    unpack_s += sw.seconds();
    recompile_s += unpacked.breakdown.recompile_seconds;
    typecheck_s += unpacked.breakdown.typecheck_seconds;
    benchmark::DoNotOptimize(unpacked.process.get());
    ++iterations;
  }
  sink.shutdown();
  sink_thread.join();

  const double n = static_cast<double>(iterations);
  const double total_s = (pack_s + sim_transfer_s + unpack_s) / n;
  state.counters["code_funcs"] = static_cast<double>(code_funcs);
  state.counters["image_kb"] =
      static_cast<double>(image_bytes) / 1024.0;
  state.counters["pack_us"] = pack_s / n * 1e6;
  state.counters["net100mbps_us"] = sim_transfer_s / n * 1e6;
  state.counters["tcp_loopback_us"] = tcp_transfer_s / n * 1e6;
  state.counters["unpack_us"] = unpack_s / n * 1e6;
  state.counters["verify_us"] = typecheck_s / n * 1e6;
  state.counters["recompile_us"] = recompile_s / n * 1e6;
  state.counters["total_us"] = total_s * 1e6;
  state.counters["transfer_frac"] = sim_transfer_s / n / total_s;
  state.counters["recompile_frac"] =
      (recompile_s + typecheck_s) / n / total_s;
}

void BM_MigrationFir(benchmark::State& state) {
  run_migration(state, migrate::ImageKind::kFir);
}

void BM_MigrationBinary(benchmark::State& state) {
  run_migration(state, migrate::ImageKind::kBinary);
}

}  // namespace

// {live heap KB, application functions}. 800 straight-line functions is a
// small scientific application's worth of code.
BENCHMARK(BM_MigrationFir)
    ->Args({200, 800})->Args({1024, 800})->Args({5120, 800})
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_MigrationBinary)
    ->Args({200, 800})->Args({1024, 800})->Args({5120, 800})
    ->Unit(benchmark::kMillisecond);

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  // One-line machine-readable record for the perf trajectory, sourced
  // from the process-wide metrics registry (aggregate over every run).
  const auto snap = mojave::obs::MetricsRegistry::instance().snapshot();
  const auto counter = [&](const char* name) -> unsigned long long {
    const auto it = snap.counters.find(name);
    return it == snap.counters.end() ? 0ull : it->second;
  };
  const auto hist_q = [&](const char* name, double q) -> double {
    const auto it = snap.histograms.find(name);
    return it == snap.histograms.end() ? 0.0 : it->second.quantile_us(q);
  };
  std::printf(
      "BENCH_JSON {\"bench\":\"migration\",\"images_packed\":%llu,"
      "\"image_bytes_packed\":%llu,\"pack_p50_us\":%.1f,\"pack_p99_us\":%.1f,"
      "\"unpack_p50_us\":%.1f,\"recompile_p50_us\":%.1f,"
      "\"gc_pause_p50_us\":%.1f,\"gc_pause_p99_us\":%.1f}\n",
      counter("migrate.images_packed"), counter("migrate.image_bytes_packed"),
      hist_q("migrate.pack_us", 0.5), hist_q("migrate.pack_us", 0.99),
      hist_q("migrate.unpack_us", 0.5), hist_q("migrate.recompile_us", 0.5),
      hist_q("gc.pause_us", 0.5), hist_q("gc.pause_us", 0.99));
  return 0;
}
