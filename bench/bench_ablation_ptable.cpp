// A2 — the price of the pointer table.
//
// Paper (Section 4.1.1): the table's validation "can be performed in a
// small number of assembly instructions", but "this level of transparency
// has a cost: in addition to the execution overhead, the header of each
// block in the heap contains an index. In the IA32 runtime, the overhead
// is in excess of 12 bytes per block, including the pointer table."
//
// Shape to reproduce: validated indirect access costs a small constant
// factor over a raw array access, and the per-block memory overhead is a
// fixed few dozen bytes (reported as a counter; ours is larger than the
// paper's 12 because the header also carries GC and speculation state).
#include <benchmark/benchmark.h>

#include "bench/workloads.hpp"

namespace {

using namespace mojave;

constexpr std::size_t kBlocks = 256;
constexpr std::uint32_t kSlots = 64;

/// Full runtime path: table validation + bounds + tag checks + write hook.
void BM_CheckedHeapAccess(benchmark::State& state) {
  runtime::Heap heap(runtime::HeapConfig{.old_capacity = 32u << 20});
  auto workload = bench::fill_heap(heap, kBlocks, kSlots);
  Rng rng(7);
  std::int64_t sum = 0;
  for (auto _ : state) {
    const BlockIndex idx = workload.blocks[rng.below(kBlocks)];
    const std::uint32_t slot = static_cast<std::uint32_t>(rng.below(kSlots));
    heap.write_slot(idx, slot, runtime::Value::from_int(1));
    sum += heap.read_slot(idx, slot).as_int();
  }
  benchmark::DoNotOptimize(sum);
  state.counters["per_block_overhead_bytes"] =
      static_cast<double>(heap.per_block_overhead());
  state.counters["table_bytes"] =
      static_cast<double>(heap.table().overhead_bytes());
}

/// Dereference without the hook/tag machinery: block lookup + direct slot.
void BM_TableLookupOnly(benchmark::State& state) {
  runtime::Heap heap(runtime::HeapConfig{.old_capacity = 32u << 20});
  auto workload = bench::fill_heap(heap, kBlocks, kSlots);
  Rng rng(7);
  std::int64_t sum = 0;
  for (auto _ : state) {
    const BlockIndex idx = workload.blocks[rng.below(kBlocks)];
    const std::uint32_t slot = static_cast<std::uint32_t>(rng.below(kSlots));
    runtime::Block* b = heap.deref(idx);  // validated table lookup
    const runtime::Value& v = b->slots()[slot];  // no bounds re-check
    if (v.is(runtime::Tag::kInt)) sum += v.as_int();
  }
  benchmark::DoNotOptimize(sum);
}

/// The unmanaged baseline: a plain array of arrays, no table, no checks.
void BM_RawArrayAccess(benchmark::State& state) {
  std::vector<std::vector<std::int64_t>> blocks(
      kBlocks, std::vector<std::int64_t>(kSlots, 3));
  Rng rng(7);
  std::int64_t sum = 0;
  for (auto _ : state) {
    auto& b = blocks[rng.below(kBlocks)];
    const std::size_t slot = rng.below(kSlots);
    b[slot] = 1;
    sum += b[slot];
  }
  benchmark::DoNotOptimize(sum);
}

/// Relocation transparency: a major compaction moves every block, yet all
/// indices stay valid — the table absorbs the relocation. This measures
/// that table patch cost per block.
void BM_RelocationPatch(benchmark::State& state) {
  runtime::Heap heap(runtime::HeapConfig{.old_capacity = 64u << 20});
  auto workload = bench::fill_heap(heap, 4096, 16);
  for (auto _ : state) {
    heap.collect(/*major=*/true);
  }
  state.counters["blocks"] = 4096;
}

}  // namespace

BENCHMARK(BM_CheckedHeapAccess);
BENCHMARK(BM_TableLookupOnly);
BENCHMARK(BM_RawArrayAccess);
BENCHMARK(BM_RelocationPatch)->Unit(benchmark::kMicrosecond);

BENCHMARK_MAIN();
