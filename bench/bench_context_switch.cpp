// E6 — the OS context-switch yardstick.
//
// Paper (Section 5): "By comparison, the context switch time on the
// cluster used for data collection was about 300µsec if only 2 processes
// with heap sizes of 200KB ran in parallel." The point of the comparison:
// every speculation primitive costs less than the OS charges just to
// switch between two processes, so language-level speculation is cheap
// relative to any scheme that needs extra processes or kernel transitions.
//
// Measured here as half the round-trip of a two-thread condvar ping-pong,
// with each thread owning a ~200 KB working set it touches per wake (as in
// the paper's setup, where the processes had 200 KB heaps).
#include <benchmark/benchmark.h>

#include <condition_variable>
#include <mutex>
#include <thread>
#include <vector>

namespace {

void BM_ContextSwitchPingPong(benchmark::State& state) {
  constexpr std::size_t kWorkingSet = 200 * 1024 / sizeof(std::uint64_t);
  std::vector<std::uint64_t> mine(kWorkingSet, 1);
  std::vector<std::uint64_t> theirs(kWorkingSet, 2);

  std::mutex mu;
  std::condition_variable cv;
  int turn = 0;  // 0 = bench thread, 1 = peer
  bool stop = false;

  std::thread peer([&] {
    std::uint64_t sink = 0;
    while (true) {
      std::unique_lock<std::mutex> lock(mu);
      cv.wait(lock, [&] { return turn == 1 || stop; });
      if (stop) return;
      // Touch the peer working set so the switch pays the cache cost.
      for (std::size_t i = 0; i < theirs.size(); i += 64) sink += theirs[i];
      turn = 0;
      cv.notify_all();
    }
    benchmark::DoNotOptimize(sink);
  });

  std::uint64_t sink = 0;
  for (auto _ : state) {
    std::unique_lock<std::mutex> lock(mu);
    turn = 1;
    cv.notify_all();
    cv.wait(lock, [&] { return turn == 0; });
    for (std::size_t i = 0; i < mine.size(); i += 64) sink += mine[i];
  }
  benchmark::DoNotOptimize(sink);

  {
    std::lock_guard<std::mutex> lock(mu);
    stop = true;
  }
  cv.notify_all();
  peer.join();

  // One iteration = two switches (there and back), so a single context
  // switch costs half the reported iteration time.
  state.counters["switches_per_iter"] = 2.0;
}

}  // namespace

BENCHMARK(BM_ContextSwitchPingPong)->Unit(benchmark::kMicrosecond);

BENCHMARK_MAIN();
