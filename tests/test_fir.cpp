// FIR-level tests: the builder's structural guarantees, the typechecker's
// rules (one negative case per rule), the printer, and program cloning.
#include <gtest/gtest.h>

#include "fir/builder.hpp"
#include "fir/printer.hpp"
#include "fir/typecheck.hpp"

namespace {

using namespace mojave;
using fir::Atom;
using fir::Binop;
using fir::ExprKind;
using fir::Program;
using fir::ProgramBuilder;
using fir::Type;
using fir::Unop;

Program minimal_program(const std::function<void(ProgramBuilder&)>& extra =
                            nullptr) {
  ProgramBuilder pb("t");
  auto main_id = pb.declare("main", {});
  if (extra) extra(pb);
  auto fb = pb.define(main_id, {});
  fb.halt(Atom::integer(0));
  return pb.take("main");
}

TEST(FirBuilder, RejectsUnterminatedBodies) {
  ProgramBuilder pb("t");
  auto id = pb.declare("main", {});
  {
    auto fb = pb.define(id, {});
    (void)fb.let_atom("x", Type::integer(), Atom::integer(1));
    // no terminator
  }
  EXPECT_THROW((void)pb.take("main"), TypeError);
}

TEST(FirBuilder, RejectsDoubleDefinitionAndDuplicateNames) {
  ProgramBuilder pb("t");
  auto id = pb.declare("main", {});
  {
    auto fb = pb.define(id, {});
    fb.halt(Atom::integer(0));
  }
  EXPECT_THROW((void)pb.define(id, {}), TypeError);
  EXPECT_THROW((void)pb.declare("main", {}), TypeError);
}

TEST(FirBuilder, RejectsAppendAfterTerminator) {
  ProgramBuilder pb("t");
  auto id = pb.declare("main", {});
  auto fb = pb.define(id, {});
  fb.halt(Atom::integer(0));
  EXPECT_THROW((void)fb.let_atom("x", Type::integer(), Atom::integer(1)),
               TypeError);
}

TEST(FirBuilder, RejectsMissingEntryOrUndefinedFunction) {
  {
    ProgramBuilder pb("t");
    (void)pb.declare("helper", {});
    EXPECT_THROW((void)pb.take("main"), TypeError);
  }
  {
    ProgramBuilder pb("t");
    auto main_id = pb.declare("main", {});
    (void)pb.declare("never_defined", {Type::integer()});
    auto fb = pb.define(main_id, {});
    fb.halt(Atom::integer(0));
    EXPECT_THROW((void)pb.take("main"), TypeError);
  }
}

// --- Typechecker rules, one negative each -----------------------------------

template <typename BuildBody>
void expect_ill_typed(BuildBody&& body) {
  ProgramBuilder pb("neg");
  auto main_id = pb.declare("main", {});
  {
    auto fb = pb.define(main_id, {});
    body(pb, fb);
  }
  EXPECT_THROW(fir::typecheck(pb.take("main")), TypeError);
}

TEST(FirTypecheck, BinopOperandTypes) {
  expect_ill_typed([](auto&, auto& fb) {
    (void)fb.let_binop("x", Binop::kAdd, Atom::integer(1), Atom::real(1.0));
    fb.halt(Atom::integer(0));
  });
  expect_ill_typed([](auto&, auto& fb) {
    (void)fb.let_binop("x", Binop::kFAdd, Atom::integer(1), Atom::real(1.0));
    fb.halt(Atom::integer(0));
  });
}

TEST(FirTypecheck, UnopOperandTypes) {
  expect_ill_typed([](auto&, auto& fb) {
    (void)fb.let_unop("x", Unop::kNeg, Atom::real(1.0));
    fb.halt(Atom::integer(0));
  });
  expect_ill_typed([](auto&, auto& fb) {
    (void)fb.let_unop("x", Unop::kFNeg, Atom::integer(1));
    fb.halt(Atom::integer(0));
  });
}

TEST(FirTypecheck, LetAnnotationMustMatch) {
  expect_ill_typed([](auto&, auto& fb) {
    (void)fb.let_atom("x", Type::real(), Atom::integer(1));
    fb.halt(Atom::integer(0));
  });
}

TEST(FirTypecheck, HaltAndBranchRequireInt) {
  expect_ill_typed([](auto&, auto& fb) { fb.halt(Atom::real(1.0)); });
  expect_ill_typed([](auto&, auto& fb) {
    fb.branch(Atom::real(1.0), [](auto& t) { t.halt(Atom::integer(0)); },
              [](auto& e) { e.halt(Atom::integer(0)); });
  });
}

TEST(FirTypecheck, ReadWritePointerAndOffsetTypes) {
  expect_ill_typed([](auto&, auto& fb) {
    (void)fb.let_read("x", Type::integer(), Atom::integer(1),
                      Atom::integer(0));
    fb.halt(Atom::integer(0));
  });
  expect_ill_typed([](auto&, auto& fb) {
    auto b = fb.let_alloc("b", Atom::integer(1), Atom::integer(0));
    fb.write(fb.v(b), Atom::real(0.0), Atom::integer(1));
    fb.halt(Atom::integer(0));
  });
}

TEST(FirTypecheck, CallArityAndArgumentTypes) {
  // Arity mismatch.
  {
    ProgramBuilder pb("neg");
    auto main_id = pb.declare("main", {});
    auto f_id = pb.declare("f", {Type::integer()});
    {
      auto fb = pb.define(main_id, {});
      fb.tail_call(Atom::fun_ref(f_id), {});
    }
    {
      auto fb = pb.define(f_id, {"x"});
      fb.halt(Atom::integer(0));
    }
    EXPECT_THROW(fir::typecheck(pb.take("main")), TypeError);
  }
  // Argument type mismatch.
  {
    ProgramBuilder pb("neg");
    auto main_id = pb.declare("main", {});
    auto f_id = pb.declare("f", {Type::integer()});
    {
      auto fb = pb.define(main_id, {});
      fb.tail_call(Atom::fun_ref(f_id), {Atom::real(1.0)});
    }
    {
      auto fb = pb.define(f_id, {"x"});
      fb.halt(Atom::integer(0));
    }
    EXPECT_THROW(fir::typecheck(pb.take("main")), TypeError);
  }
}

TEST(FirTypecheck, SpeculateContinuationNeedsLeadingInt) {
  ProgramBuilder pb("neg");
  auto main_id = pb.declare("main", {});
  auto k_id = pb.declare("k", {Type::ptr()});  // first param not int
  {
    auto fb = pb.define(main_id, {});
    auto b = fb.let_alloc("b", Atom::integer(1), Atom::integer(0));
    (void)b;
    fb.speculate(Atom::fun_ref(k_id), {});
  }
  {
    auto fb = pb.define(k_id, {"p"});
    fb.halt(Atom::integer(0));
  }
  EXPECT_THROW(fir::typecheck(pb.take("main")), TypeError);
}

TEST(FirTypecheck, DuplicateMigrateLabelsRejected) {
  ProgramBuilder pb("neg");
  auto main_id = pb.declare("main", {});
  auto k_id = pb.declare("k", {});
  {
    auto fb = pb.define(main_id, {});
    auto tgt = fb.let_atom("t", Type::ptr(), pb.str("checkpoint://x"));
    fb.migrate(5, fb.v(tgt), Atom::fun_ref(k_id), {});
  }
  {
    auto fb = pb.define(k_id, {});
    auto tgt = fb.let_atom("t", Type::ptr(), pb.str("checkpoint://x"));
    fb.migrate(5, fb.v(tgt), Atom::fun_ref(k_id), {});
  }
  EXPECT_THROW(fir::typecheck(pb.take("main")), TypeError);
}

TEST(FirTypecheck, EntryMustBeNullary) {
  ProgramBuilder pb("neg");
  auto main_id = pb.declare("main", {Type::integer()});
  {
    auto fb = pb.define(main_id, {"x"});
    fb.halt(Atom::integer(0));
  }
  EXPECT_THROW(fir::typecheck(pb.take("main")), TypeError);
}

TEST(FirTypecheck, UseBeforeBindRejected) {
  // A variable used in the then-branch but bound only in the else-branch.
  ProgramBuilder pb("neg");
  auto main_id = pb.declare("main", {});
  {
    auto fb = pb.define(main_id, {});
    // Manually forge a body that uses an unbound variable id.
    auto x = fb.let_atom("x", Type::integer(), Atom::integer(1));
    fb.branch(
        fb.v(x),
        [&](auto& t) {
          // variable id x+5 was never bound
          t.halt(Atom::variable(x + 5));
        },
        [&](auto& e) { e.halt(Atom::integer(0)); });
  }
  EXPECT_THROW(fir::typecheck(pb.take("main")), TypeError);
}

TEST(FirTypecheck, AcceptsTheMinimalProgram) {
  EXPECT_NO_THROW(fir::typecheck(minimal_program()));
}

TEST(FirPrinter, RendersAllConstructs) {
  ProgramBuilder pb("demo");
  auto main_id = pb.declare("main", {});
  auto k_id = pb.declare("k", {Type::integer(), Type::ptr()});
  {
    auto fb = pb.define(main_id, {});
    auto b = fb.let_alloc("buf", Atom::integer(4), Atom::integer(0));
    auto r = fb.let_alloc_raw("raw", Atom::integer(32));
    fb.raw_store(4, fb.v(r), Atom::integer(0), Atom::integer(7));
    auto x = fb.let_raw_load("x", 4, fb.v(r), Atom::integer(0));
    auto p = fb.let_ptr_add("p", fb.v(b), Atom::integer(1));
    fb.write(fb.v(p), Atom::integer(0), fb.v(x));
    auto n = fb.let_len("n", fb.v(b));
    (void)n;
    auto s = fb.let_atom("s", Type::ptr(), pb.str("hello"));
    (void)s;
    fb.speculate(Atom::fun_ref(k_id), {fb.v(b)});
  }
  {
    auto fb = pb.define(k_id, {"c", "buf"});
    auto done = fb.let_binop("done", Binop::kGt, fb.arg(0), Atom::integer(0));
    fb.branch(
        fb.v(done),
        [&](auto& t) {
          t.commit(t.arg(0), Atom::fun_ref(k_id),
                   {Atom::integer(0), t.arg(1)});
        },
        [&](auto& e) { e.rollback(Atom::integer(1), Atom::integer(-1)); });
  }
  const Program prog = pb.take("main");
  const std::string text = fir::to_string(prog);
  for (const char* needle :
       {"alloc(", "alloc_raw(", "raw_store32", "raw_load32", "ptr_add(",
        "block_size(", "speculate", "commit [", "rollback [", "if ", "str#0",
        "fun main", "fun k"}) {
    EXPECT_NE(text.find(needle), std::string::npos) << needle << "\n" << text;
  }
}

TEST(FirClone, CloneIsDeepAndEqualByPrinting) {
  ProgramBuilder pb("c");
  auto main_id = pb.declare("main", {});
  {
    auto fb = pb.define(main_id, {});
    auto x = fb.let_binop("x", Binop::kMul, Atom::integer(6),
                          Atom::integer(7));
    fb.branch(fb.v(x), [](auto& t) { t.halt(Atom::integer(1)); },
              [](auto& e) { e.halt(Atom::integer(0)); });
  }
  const Program a = pb.take("main");
  const Program b = fir::clone_program(a);
  EXPECT_EQ(fir::to_string(a), fir::to_string(b));
  EXPECT_NE(a.functions[0].body.get(), b.functions[0].body.get());
}

}  // namespace
