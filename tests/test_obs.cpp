// Tests for the telemetry layer: metrics registry semantics, histogram
// bucketing/quantiles, trace ring wraparound, and Chrome JSON output.
#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace mojave::obs {
namespace {

// ---------------------------------------------------------------------------
// Counter / Gauge

TEST(Metrics, CounterIncrementsAndResets) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.inc();
  c.inc(41);
  EXPECT_EQ(c.value(), 42u);
  c.reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(Metrics, GaugeSetAddAndNegative) {
  Gauge g;
  g.set(10);
  g.add(-25);
  EXPECT_EQ(g.value(), -15);
  g.reset();
  EXPECT_EQ(g.value(), 0);
}

TEST(Metrics, ConcurrentCounterIncrementsAreExact) {
  Counter c;
  constexpr int kThreads = 4;
  constexpr int kPerThread = 100000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c] {
      for (int i = 0; i < kPerThread; ++i) c.inc();
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(c.value(), static_cast<std::uint64_t>(kThreads) * kPerThread);
}

// ---------------------------------------------------------------------------
// Histogram

TEST(Metrics, HistogramEmptySnapshotIsZero) {
  Histogram h;
  const auto s = h.snapshot();
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.min_us, 0);
  EXPECT_EQ(s.max_us, 0);
  EXPECT_EQ(s.mean_us(), 0);
  EXPECT_EQ(s.quantile_us(0.5), 0);
}

TEST(Metrics, HistogramTracksCountSumMinMax) {
  Histogram h;
  h.record_us(3);
  h.record_us(150);
  h.record_us(7000);
  const auto s = h.snapshot();
  EXPECT_EQ(s.count, 3u);
  EXPECT_NEAR(s.sum_us, 7153, 0.01);
  EXPECT_NEAR(s.min_us, 3, 0.01);
  EXPECT_NEAR(s.max_us, 7000, 0.01);
  EXPECT_NEAR(s.mean_us(), 7153.0 / 3, 0.01);
}

TEST(Metrics, HistogramBucketsValuesOnThe125Ladder) {
  Histogram h;
  // Bounds are inclusive: 1, 2, 5, 10, ... — a 2 µs sample lands in the
  // bucket whose upper bound is 2.
  h.record_us(2);
  h.record_us(2.5);   // > 2, <= 5
  h.record_us(1e8);   // beyond the last bound: overflow bucket
  const auto s = h.snapshot();
  EXPECT_EQ(s.buckets[1], 1u);  // (1, 2]
  EXPECT_EQ(s.buckets[2], 1u);  // (2, 5]
  EXPECT_EQ(s.buckets[Histogram::kNumBuckets - 1], 1u);  // overflow
}

TEST(Metrics, HistogramQuantilesAreMonotoneAndBounded) {
  Histogram h;
  for (int i = 1; i <= 1000; ++i) h.record_us(i);  // ~uniform on [1,1000]
  const auto s = h.snapshot();
  const double p50 = s.quantile_us(0.5);
  const double p90 = s.quantile_us(0.9);
  const double p99 = s.quantile_us(0.99);
  EXPECT_LE(p50, p90);
  EXPECT_LE(p90, p99);
  // Bucketed estimates: tolerate the bucket-width error (bounds 500/1000).
  EXPECT_GT(p50, 200);
  EXPECT_LE(p99, 1000);
}

TEST(Metrics, HistogramResetClearsEverything) {
  Histogram h;
  h.record_us(123);
  h.reset();
  const auto s = h.snapshot();
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.sum_us, 0);
  EXPECT_EQ(s.min_us, 0);
  EXPECT_EQ(s.max_us, 0);
  for (const auto b : s.buckets) EXPECT_EQ(b, 0u);
}

TEST(Metrics, ConcurrentHistogramRecordsCountExactly) {
  Histogram h;
  constexpr int kThreads = 4;
  constexpr int kPerThread = 50000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h, t] {
      for (int i = 0; i < kPerThread; ++i) {
        h.record_us(static_cast<double>(1 + (i + t) % 1000));
      }
    });
  }
  for (auto& t : threads) t.join();
  const auto s = h.snapshot();
  EXPECT_EQ(s.count, static_cast<std::uint64_t>(kThreads) * kPerThread);
  std::uint64_t bucket_total = 0;
  for (const auto b : s.buckets) bucket_total += b;
  EXPECT_EQ(bucket_total, s.count);
}

// ---------------------------------------------------------------------------
// Registry

TEST(Metrics, RegistryFindOrCreateReturnsStableHandles) {
  auto& reg = MetricsRegistry::instance();
  Counter& a = reg.counter("test.obs.stable");
  Counter& b = reg.counter("test.obs.stable");
  EXPECT_EQ(&a, &b);
  a.inc(7);
  EXPECT_EQ(reg.snapshot().counters.at("test.obs.stable"), 7u);
}

TEST(Metrics, RegistrySnapshotAndResetAll) {
  auto& reg = MetricsRegistry::instance();
  reg.counter("test.obs.c1").inc(3);
  reg.gauge("test.obs.g1").set(-9);
  reg.histogram("test.obs.h1").record_us(50);

  auto snap = reg.snapshot();
  EXPECT_EQ(snap.counters.at("test.obs.c1"), 3u);
  EXPECT_EQ(snap.gauges.at("test.obs.g1"), -9);
  EXPECT_EQ(snap.histograms.at("test.obs.h1").count, 1u);

  reg.reset_all();
  snap = reg.snapshot();
  EXPECT_EQ(snap.counters.at("test.obs.c1"), 0u);
  EXPECT_EQ(snap.gauges.at("test.obs.g1"), 0);
  EXPECT_EQ(snap.histograms.at("test.obs.h1").count, 0u);
  // Handles stay valid after reset.
  reg.counter("test.obs.c1").inc();
  EXPECT_EQ(reg.snapshot().counters.at("test.obs.c1"), 1u);
}

TEST(Metrics, DumpTextListsEveryFamily) {
  auto& reg = MetricsRegistry::instance();
  reg.counter("test.obs.dump_c").inc(5);
  reg.gauge("test.obs.dump_g").set(2);
  reg.histogram("test.obs.dump_h").record_us(10);
  const std::string text = reg.dump_text();
  EXPECT_NE(text.find("counter test.obs.dump_c 5"), std::string::npos);
  EXPECT_NE(text.find("gauge test.obs.dump_g 2"), std::string::npos);
  EXPECT_NE(text.find("hist test.obs.dump_h count=1"), std::string::npos);
}

// Minimal structural JSON check: balanced brackets outside strings, and no
// trailing garbage. Good enough to catch emitter bugs without a parser.
bool json_well_formed(const std::string& s) {
  std::vector<char> stack;
  bool in_string = false;
  bool escaped = false;
  for (const char c : s) {
    if (in_string) {
      if (escaped) escaped = false;
      else if (c == '\\') escaped = true;
      else if (c == '"') in_string = false;
      continue;
    }
    switch (c) {
      case '"': in_string = true; break;
      case '{': case '[': stack.push_back(c); break;
      case '}':
        if (stack.empty() || stack.back() != '{') return false;
        stack.pop_back();
        break;
      case ']':
        if (stack.empty() || stack.back() != '[') return false;
        stack.pop_back();
        break;
      default: break;
    }
  }
  return !in_string && stack.empty() && !s.empty();
}

TEST(Metrics, DumpJsonIsWellFormed) {
  auto& reg = MetricsRegistry::instance();
  reg.counter("test.obs.json_c").inc();
  reg.histogram("test.obs.json_h").record_us(123);
  const std::string json = reg.dump_json();
  EXPECT_TRUE(json_well_formed(json)) << json;
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"gauges\""), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
  EXPECT_NE(json.find("\"test.obs.json_c\":1"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Tracer

class TracerTest : public ::testing::Test {
 protected:
  void TearDown() override { Tracer::instance().disable(); }
};

TEST_F(TracerTest, DisabledTracerRecordsNothing) {
  auto& tr = Tracer::instance();
  ASSERT_FALSE(tr.enabled());
  const auto before = tr.recorded();
  tr.instant("test", "noop");
  { ScopedSpan span("test", "noop_span"); }
  EXPECT_EQ(tr.recorded(), before);
}

TEST_F(TracerTest, RecordsInstantsAndSpans) {
  auto& tr = Tracer::instance();
  tr.enable(64);
  tr.instant("test", "tick", "n", 3);
  {
    ScopedSpan span("test", "work");
    span.set_arg("bytes", 128);
  }
  EXPECT_EQ(tr.recorded(), 2u);
  const std::string json = tr.dump_chrome_json();
  EXPECT_TRUE(json_well_formed(json)) << json;
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"tick\""), std::string::npos);
  EXPECT_NE(json.find("\"work\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);  // instant
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);  // complete span
  EXPECT_NE(json.find("\"bytes\":128"), std::string::npos);
}

TEST_F(TracerTest, RingWrapsAndKeepsTheNewestEvents) {
  auto& tr = Tracer::instance();
  tr.enable(8);
  for (int i = 0; i < 20; ++i) tr.instant("test", "e", "i", i);
  EXPECT_EQ(tr.recorded(), 20u);
  EXPECT_EQ(tr.capacity(), 8u);
  const std::string json = tr.dump_chrome_json();
  // Only the last 8 events are retained: 12..19.
  EXPECT_EQ(json.find("\"i\":11"), std::string::npos);
  EXPECT_NE(json.find("\"i\":12"), std::string::npos);
  EXPECT_NE(json.find("\"i\":19"), std::string::npos);
}

TEST_F(TracerTest, ClearDropsEventsButKeepsRecording) {
  auto& tr = Tracer::instance();
  tr.enable(8);
  tr.instant("test", "a");
  tr.clear();
  EXPECT_EQ(tr.recorded(), 0u);
  EXPECT_TRUE(tr.enabled());
  tr.instant("test", "b");
  EXPECT_EQ(tr.recorded(), 1u);
  const std::string json = tr.dump_chrome_json();
  EXPECT_EQ(json.find("\"a\""), std::string::npos);
  EXPECT_NE(json.find("\"b\""), std::string::npos);
}

TEST_F(TracerTest, SpanRenameSticks) {
  auto& tr = Tracer::instance();
  tr.enable(8);
  {
    ScopedSpan span("test", "minor");
    span.set_name("major");
  }
  const std::string json = tr.dump_chrome_json();
  EXPECT_EQ(json.find("\"minor\""), std::string::npos);
  EXPECT_NE(json.find("\"major\""), std::string::npos);
}

TEST_F(TracerTest, ConcurrentRecordingCountsEveryEvent) {
  auto& tr = Tracer::instance();
  tr.enable(1u << 12);
  constexpr int kThreads = 4;
  constexpr int kPerThread = 500;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&tr] {
      for (int i = 0; i < kPerThread; ++i) tr.instant("test", "mt");
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(tr.recorded(), static_cast<std::uint64_t>(kThreads) * kPerThread);
  EXPECT_TRUE(json_well_formed(tr.dump_chrome_json()));
}

}  // namespace
}  // namespace mojave::obs
