// Serialization robustness: FIR program and bytecode round trips, and
// rejection of corrupt/hostile streams — the property an untrusted
// migration server depends on. Includes a randomized bit-flip sweep: a
// mutated program stream must either decode to something the typechecker
// accepts or be rejected with a typed error, never crash.
#include <gtest/gtest.h>

#include "fir/builder.hpp"
#include "fir/printer.hpp"
#include "fir/serialize.hpp"
#include "fir/typecheck.hpp"
#include "support/rng.hpp"
#include "vm/bytecode.hpp"
#include "vm/lowering.hpp"

namespace {

using namespace mojave;
using fir::Atom;
using fir::Binop;
using fir::Program;
using fir::ProgramBuilder;
using fir::Type;

Program sample_program() {
  ProgramBuilder pb("sample");
  auto main_id = pb.declare("main", {});
  auto loop_id = pb.declare("loop", {Type::integer(), Type::ptr()});
  auto k_id = pb.declare("k", {Type::integer(), Type::ptr()});
  {
    auto fb = pb.define(main_id, {});
    auto buf = fb.let_alloc("buf", Atom::integer(8), Atom::integer(0));
    fb.tail_call(Atom::fun_ref(loop_id), {Atom::integer(0), fb.v(buf)});
  }
  {
    auto fb = pb.define(loop_id, {"i", "buf"});
    auto done = fb.let_binop("done", Binop::kGe, fb.arg(0), Atom::integer(8));
    fb.branch(
        fb.v(done),
        [&](auto& t) { t.speculate(Atom::fun_ref(k_id), {t.arg(1)}); },
        [&](auto& e) {
          e.write(e.arg(1), e.arg(0), e.arg(0));
          auto i1 = e.let_binop("i1", Binop::kAdd, e.arg(0), Atom::integer(1));
          e.tail_call(Atom::fun_ref(loop_id), {e.v(i1), e.arg(1)});
        });
  }
  {
    auto fb = pb.define(k_id, {"c", "buf"});
    auto tgt = fb.let_atom("t", Type::ptr(), pb.str("checkpoint://x"));
    fb.migrate(3, fb.v(tgt), Atom::fun_ref(k_id),
               {Atom::integer(0), fb.arg(1)});
  }
  return pb.take("main");
}

TEST(Serialize, ProgramRoundTripIsExact) {
  const Program p = sample_program();
  const auto bytes = fir::encode_program(p);
  const Program q = fir::decode_program(bytes);
  EXPECT_EQ(fir::to_string(p), fir::to_string(q));
  EXPECT_EQ(p.entry, q.entry);
  EXPECT_EQ(p.strings, q.strings);
  // Round trip again: stable fixed point.
  EXPECT_EQ(bytes, fir::encode_program(q));
}

TEST(Serialize, DecodedProgramStillTypechecks) {
  const Program q = fir::decode_program(fir::encode_program(sample_program()));
  EXPECT_NO_THROW(fir::typecheck(q));
}

TEST(Serialize, RejectsTruncationAtEveryPrefix) {
  const auto bytes = fir::encode_program(sample_program());
  // Every strict prefix must be rejected cleanly.
  for (std::size_t len : {std::size_t{0}, std::size_t{1}, bytes.size() / 4,
                          bytes.size() / 2, bytes.size() - 1}) {
    EXPECT_THROW((void)fir::decode_program(
                     std::span(bytes.data(), len)),
                 ImageError)
        << "prefix " << len;
  }
}

TEST(Serialize, RejectsTrailingGarbage) {
  auto bytes = fir::encode_program(sample_program());
  bytes.push_back(std::byte{0});
  EXPECT_THROW((void)fir::decode_program(bytes), ImageError);
}

TEST(Serialize, BitFlipsNeverCrashTheDecoder) {
  const auto bytes = fir::encode_program(sample_program());
  Rng rng(2024);
  int decoded_ok = 0;
  int rejected = 0;
  for (int trial = 0; trial < 400; ++trial) {
    auto mutated = bytes;
    const std::size_t flips = 1 + rng.below(4);
    for (std::size_t f = 0; f < flips; ++f) {
      const std::size_t pos = rng.below(mutated.size());
      mutated[pos] ^= std::byte{
          static_cast<std::uint8_t>(1u << rng.below(8))};
    }
    try {
      const Program p = fir::decode_program(mutated);
      // If it decodes, the typechecker is the next line of defence; it
      // must also either accept or throw TypeError — never crash.
      try {
        fir::typecheck(p);
        ++decoded_ok;
      } catch (const TypeError&) {
        ++rejected;
      }
    } catch (const Error&) {
      ++rejected;
    }
  }
  // Most mutations must be caught somewhere.
  EXPECT_GT(rejected, 0);
  EXPECT_EQ(decoded_ok + rejected, 400);
}

TEST(Serialize, CompiledProgramRoundTrip) {
  const vm::CompiledProgram cp = vm::lower(sample_program());
  Writer w;
  vm::serialize_compiled(w, cp);
  Reader r(w.view());
  const vm::CompiledProgram cq = vm::deserialize_compiled(r);
  EXPECT_TRUE(r.done());
  ASSERT_EQ(cq.functions.size(), cp.functions.size());
  EXPECT_EQ(cq.entry, cp.entry);
  EXPECT_EQ(cq.strings, cp.strings);
  EXPECT_EQ(cq.ext_names, cp.ext_names);
  EXPECT_EQ(cq.migrate_labels, cp.migrate_labels);
  for (std::size_t i = 0; i < cp.functions.size(); ++i) {
    const auto& a = cp.functions[i];
    const auto& b = cq.functions[i];
    EXPECT_EQ(a.name, b.name);
    EXPECT_EQ(a.arity, b.arity);
    EXPECT_EQ(a.num_regs, b.num_regs);
    ASSERT_EQ(a.code.size(), b.code.size());
    for (std::size_t k = 0; k < a.code.size(); ++k) {
      EXPECT_EQ(a.code[k].op, b.code[k].op);
      EXPECT_EQ(a.code[k].dst, b.code[k].dst);
      EXPECT_EQ(a.code[k].imm, b.code[k].imm);
      EXPECT_EQ(a.code[k].args, b.code[k].args);
    }
  }
}

TEST(Serialize, BytecodeDecoderRejectsBadOpcodesAndSizes) {
  const vm::CompiledProgram cp = vm::lower(sample_program());
  Writer w;
  vm::serialize_compiled(w, cp);
  auto bytes = w.take();
  // Find and corrupt the first opcode byte region aggressively: flipping
  // random bytes must never crash.
  Rng rng(7);
  for (int trial = 0; trial < 200; ++trial) {
    auto mutated = bytes;
    mutated[rng.below(mutated.size())] = std::byte{0xff};
    Reader r(mutated);
    try {
      (void)vm::deserialize_compiled(r);
    } catch (const Error&) {
      // expected for most mutations
    }
  }
  SUCCEED();
}

/// Property: random builder-generated programs survive the round trip.
class SerializeProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SerializeProperty, RandomProgramsRoundTrip) {
  Rng rng(GetParam());
  ProgramBuilder pb("rand");
  auto main_id = pb.declare("main", {});
  {
    auto fb = pb.define(main_id, {});
    fir::Atom last = Atom::integer(1);
    for (int i = 0; i < 30; ++i) {
      switch (rng.below(4)) {
        case 0:
          last = fb.v(fb.let_binop(
              "b" + std::to_string(i),
              static_cast<Binop>(rng.below(10)), last,
              Atom::integer(static_cast<std::int64_t>(rng.below(100) + 1))));
          break;
        case 1:
          last = fb.v(fb.let_atom("a" + std::to_string(i), Type::integer(),
                                  Atom::integer(static_cast<std::int64_t>(
                                      rng.below(1000)))));
          break;
        case 2: {
          auto p = fb.let_alloc("p" + std::to_string(i),
                                Atom::integer(4), last);
          fb.write(fb.v(p), Atom::integer(0), last);
          break;
        }
        default:
          last = fb.v(fb.let_unop("u" + std::to_string(i),
                                  static_cast<fir::Unop>(rng.below(3)), last));
          break;
      }
    }
    fb.halt(last);
  }
  const Program p = pb.take("main");
  fir::typecheck(p);
  const Program q = fir::decode_program(fir::encode_program(p));
  EXPECT_EQ(fir::to_string(p), fir::to_string(q));
  fir::typecheck(q);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SerializeProperty,
                         ::testing::Values(1, 2, 3, 4, 5, 6));

}  // namespace
