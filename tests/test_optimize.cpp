// Optimizer tests: each pass individually, re-typechecking after
// optimization, and the equivalence property — an optimized program must
// behave identically to the original, on hand-written MojC programs and
// on randomized builder programs alike.
#include <gtest/gtest.h>

#include <sstream>

#include "fir/builder.hpp"
#include "fir/optimize.hpp"
#include "fir/printer.hpp"
#include "fir/typecheck.hpp"
#include "frontend/compile.hpp"
#include "support/rng.hpp"
#include "vm/process.hpp"

namespace {

using namespace mojave;
using fir::Atom;
using fir::Binop;
using fir::Program;
using fir::ProgramBuilder;
using fir::Type;
using fir::Unop;

std::size_t count_exprs(const fir::Expr* e) {
  std::size_t n = 0;
  for (; e != nullptr; e = e->next.get()) {
    ++n;
    if (e->kind == fir::ExprKind::kIf) return n + count_exprs(e->els.get()) +
                                              count_exprs(e->next.get()) - 1;
  }
  return n;
}

std::size_t program_size(const Program& p) {
  std::size_t n = 0;
  for (const auto& fn : p.functions) n += count_exprs(fn.body.get());
  return n;
}

TEST(Optimize, FoldsConstantArithmetic) {
  ProgramBuilder pb("fold");
  auto main_id = pb.declare("main", {});
  {
    auto fb = pb.define(main_id, {});
    auto a = fb.let_binop("a", Binop::kAdd, Atom::integer(2), Atom::integer(3));
    auto b = fb.let_binop("b", Binop::kMul, fb.v(a), Atom::integer(4));
    auto c = fb.let_unop("c", Unop::kNeg, fb.v(b));
    fb.halt(fb.v(c));
  }
  Program p = pb.take("main");
  const auto stats = fir::optimize(p);
  EXPECT_GE(stats.constants_folded, 3u);
  fir::typecheck(p);
  // Everything folded: the body is a single halt of the literal -20.
  EXPECT_EQ(p.functions[0].body->kind, fir::ExprKind::kHalt);
  EXPECT_EQ(p.functions[0].body->a.i, -20);
  vm::Process proc(std::move(p));
  EXPECT_EQ(proc.run().exit_code, -20);
}

TEST(Optimize, DoesNotFoldDivisionByLiteralZero) {
  ProgramBuilder pb("divzero");
  auto main_id = pb.declare("main", {});
  {
    auto fb = pb.define(main_id, {});
    auto a = fb.let_binop("a", Binop::kDiv, Atom::integer(1), Atom::integer(0));
    fb.halt(fb.v(a));
  }
  Program p = pb.take("main");
  (void)fir::optimize(p);
  fir::typecheck(p);
  // The trap is the program's behaviour; it must survive optimization.
  vm::Process proc(std::move(p));
  EXPECT_THROW((void)proc.run(), SafetyError);
}

TEST(Optimize, FoldsBranchesOnLiterals) {
  ProgramBuilder pb("branch");
  auto main_id = pb.declare("main", {});
  {
    auto fb = pb.define(main_id, {});
    auto cond =
        fb.let_binop("cond", Binop::kLt, Atom::integer(3), Atom::integer(5));
    fb.branch(fb.v(cond), [](auto& t) { t.halt(Atom::integer(1)); },
              [](auto& e) { e.halt(Atom::integer(2)); });
  }
  Program p = pb.take("main");
  const auto stats = fir::optimize(p);
  EXPECT_EQ(stats.branches_folded, 1u);
  EXPECT_EQ(p.functions[0].body->kind, fir::ExprKind::kHalt);
  EXPECT_EQ(p.functions[0].body->a.i, 1);
}

TEST(Optimize, RemovesDeadPureLets) {
  ProgramBuilder pb("dead");
  auto main_id = pb.declare("main", {});
  {
    auto fb = pb.define(main_id, {});
    auto x = fb.let_atom("x", Type::integer(), Atom::integer(5));
    // Not foldable (operand is a parameter-like unknown)? Use an alloc to
    // create an unknown, then dead arithmetic on a live value.
    auto buf = fb.let_alloc("buf", Atom::integer(1), Atom::integer(3));
    auto live = fb.let_read("live", Type::integer(), fb.v(buf),
                            Atom::integer(0));
    auto dead = fb.let_binop("dead", Binop::kAdd, fb.v(live), fb.v(x));
    (void)dead;  // never used
    fb.halt(fb.v(live));
  }
  Program p = pb.take("main");
  const std::size_t before = program_size(p);
  const auto stats = fir::optimize(p);
  EXPECT_GE(stats.dead_lets_removed, 1u);
  EXPECT_LT(program_size(p), before);
  fir::typecheck(p);
  vm::Process proc(std::move(p));
  EXPECT_EQ(proc.run().exit_code, 3);
}

TEST(Optimize, KeepsEffectfulOperations) {
  // Allocation, writes, reads, externals, speculation: none may vanish
  // even when their results are unused.
  ProgramBuilder pb("effects");
  auto main_id = pb.declare("main", {});
  {
    auto fb = pb.define(main_id, {});
    auto u = fb.let_external("u", Type::unit(), "print_string",
                             {pb.str("kept\n")});
    (void)u;
    auto buf = fb.let_alloc("buf", Atom::integer(2), Atom::integer(0));
    fb.write(fb.v(buf), Atom::integer(0), Atom::integer(1));
    auto r = fb.let_read("r", Type::integer(), fb.v(buf), Atom::integer(0));
    (void)r;  // a read can trap; it stays even if unused
    fb.halt(Atom::integer(0));
  }
  Program p = pb.take("main");
  (void)fir::optimize(p);
  std::ostringstream out;
  vm::ProcessConfig cfg;
  cfg.output = &out;
  vm::Process proc(std::move(p), cfg);
  EXPECT_EQ(proc.run().exit_code, 0);
  EXPECT_EQ(out.str(), "kept\n");
}

std::int64_t run_program(Program p, std::string* output = nullptr) {
  std::ostringstream out;
  vm::ProcessConfig cfg;
  cfg.output = &out;
  cfg.max_instructions = 10'000'000;
  vm::Process proc(std::move(p), cfg);
  const auto r = proc.run();
  EXPECT_EQ(r.kind, vm::RunResult::Kind::kHalted);
  if (output) *output = out.str();
  return r.exit_code;
}

TEST(Optimize, MojcProgramsBehaveIdentically) {
  const char* sources[] = {
      "int main() { int a = 3; int b = a * 7 + 2; return b - a; }",
      "int main() { ptr x = alloc(4); int i = 0;"
      "  while (i < 4) { x[i] = i * i; i = i + 1; }"
      "  return x[0] + x[1] + x[2] + x[3]; }",
      "int f(int n) { if (n < 2) { return n; } int a = f(n-1);"
      "  int b = f(n-2); return a + b; }"
      "int main() { return f(10); }",
      "int main() { ptr a = alloc(1); a[0] = 5; int id = speculate();"
      "  if (id > 0) { a[0] = 9; abort(id); } return a[0] * 10 + id; }",
  };
  for (const char* src : sources) {
    Program plain = frontend::compile_source("plain", src);
    Program opt = fir::clone_program(plain);
    (void)fir::optimize(opt);
    fir::typecheck(opt);
    std::string out_plain;
    std::string out_opt;
    const auto a = run_program(std::move(plain), &out_plain);
    const auto b = run_program(std::move(opt), &out_opt);
    EXPECT_EQ(a, b) << src;
    EXPECT_EQ(out_plain, out_opt) << src;
  }
}

/// Equivalence property on randomized straight-line + branching programs.
class OptimizeProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(OptimizeProperty, RandomProgramsAreEquivalentAfterOptimization) {
  Rng rng(GetParam());
  ProgramBuilder pb("rand");
  auto main_id = pb.declare("main", {});
  {
    auto fb = pb.define(main_id, {});
    auto buf = fb.let_alloc("buf", Atom::integer(4),
                            Atom::integer(static_cast<std::int64_t>(
                                rng.below(100))));
    fir::Atom last =
        fb.v(fb.let_read("seed", Type::integer(), fb.v(buf),
                         Atom::integer(0)));
    for (int i = 0; i < 40; ++i) {
      const auto roll = rng.below(6);
      if (roll < 3) {
        // Mix of constant and value operands: folding + propagation fuel.
        const Binop ops[] = {Binop::kAdd, Binop::kSub, Binop::kMul,
                             Binop::kAnd, Binop::kOr,  Binop::kXor,
                             Binop::kLt,  Binop::kGe};
        const Atom rhs =
            rng.chance(0.5)
                ? Atom::integer(static_cast<std::int64_t>(rng.below(50)) + 1)
                : last;
        last = fb.v(fb.let_binop("b" + std::to_string(i),
                                 ops[rng.below(8)], last, rhs));
      } else if (roll == 3) {
        last = fb.v(fb.let_unop("u" + std::to_string(i),
                                static_cast<Unop>(rng.below(3)), last));
      } else if (roll == 4) {
        auto copy = fb.let_atom("c" + std::to_string(i), Type::integer(),
                                Atom::integer(static_cast<std::int64_t>(
                                    rng.below(1000))));
        last = fb.v(fb.let_binop("m" + std::to_string(i), Binop::kXor, last,
                                 fb.v(copy)));
      } else {
        // Dead code: an unused chain of pure lets.
        auto d1 = fb.let_binop("d" + std::to_string(i), Binop::kAdd, last,
                               Atom::integer(7));
        (void)fb.let_unop("e" + std::to_string(i), Unop::kBitNot, fb.v(d1));
      }
    }
    fb.write(fb.v(buf), Atom::integer(1), last);
    auto readback =
        fb.let_read("rb", Type::integer(), fb.v(buf), Atom::integer(1));
    auto masked = fb.let_binop("mask", Binop::kAnd, fb.v(readback),
                               Atom::integer(0xffff));
    fb.halt(fb.v(masked));
  }
  Program plain = pb.take("main");
  Program opt = fir::clone_program(plain);
  const auto stats = fir::optimize(opt);
  fir::typecheck(opt);
  EXPECT_GT(stats.total(), 0u);
  EXPECT_LE(program_size(opt), program_size(plain));
  EXPECT_EQ(run_program(std::move(plain)), run_program(std::move(opt)));
}

INSTANTIATE_TEST_SUITE_P(Seeds, OptimizeProperty,
                         ::testing::Values(101, 202, 303, 404, 505, 606, 707,
                                           808, 909, 1010));

}  // namespace
