// Poller + FramedSocket unit tests (src/net/poller.*): the non-blocking
// I/O core under the rank-dense agent. The cases here are the edges the
// event loop must survive without a blocking reader thread to hide them:
// a peer dying mid-frame (EPOLLHUP with a partial frame buffered), a
// writev that the kernel cuts short (the partial-flush cursor), and a
// wake() racing a socket teardown.
#include <gtest/gtest.h>

#include <sys/socket.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <thread>
#include <vector>

#include "net/poller.hpp"
#include "net/tcp.hpp"

namespace {

using namespace mojave;
using net::FramedSocket;
using net::Poller;

/// A connected loopback pair: first = client side, second = accepted side.
std::pair<net::TcpStream, net::TcpStream> tcp_pair() {
  net::TcpListener listener(0);
  auto client = net::TcpStream::connect("127.0.0.1", listener.port());
  auto server = listener.accept();
  EXPECT_TRUE(server.has_value());
  return {std::move(client), std::move(*server)};
}

std::vector<std::byte> make_payload(std::size_t n, std::uint8_t seed) {
  std::vector<std::byte> p(n);
  for (std::size_t i = 0; i < n; ++i) {
    p[i] = std::byte{static_cast<std::uint8_t>(seed + i)};
  }
  return p;
}

TEST(Poller, WakeUnblocksWaitFromAnotherThread) {
  Poller poller;
  std::atomic<bool> woke{false};
  std::thread waker([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    woke.store(true);
    poller.wake();
  });
  std::vector<Poller::Event> events;
  // Without the wake this would sleep the full 5 s and fail the bound.
  const auto start = std::chrono::steady_clock::now();
  poller.wait(events, 5000);
  const auto elapsed = std::chrono::steady_clock::now() - start;
  waker.join();
  EXPECT_TRUE(woke.load());
  EXPECT_LT(elapsed, std::chrono::seconds(2));
  EXPECT_TRUE(events.empty()) << "wake() must be consumed silently";
}

TEST(Poller, WakeBeforeWaitReturnsImmediately) {
  Poller poller;
  poller.wake();
  poller.wake();  // coalesces
  std::vector<Poller::Event> events;
  const auto start = std::chrono::steady_clock::now();
  poller.wait(events, 5000);
  EXPECT_LT(std::chrono::steady_clock::now() - start,
            std::chrono::seconds(2));
  EXPECT_TRUE(events.empty());
}

/// The peer dies after sending a frame header and a sliver of payload.
/// The poller must surface hup, and on_readable must report the
/// connection finished rather than wait forever for the missing bytes.
TEST(Poller, HupMidFrameFinishesConnection) {
  auto [client, server] = tcp_pair();

  // Hand-build a frame header announcing 100 payload bytes, send 10.
  std::uint32_t len = 100;
  std::byte header[4];
  std::memcpy(header, &len, 4);
  ASSERT_EQ(::send(client.fd(), header, 4, MSG_NOSIGNAL), 4);
  const auto sliver = make_payload(10, 7);
  ASSERT_EQ(::send(client.fd(), sliver.data(), sliver.size(), MSG_NOSIGNAL),
            static_cast<ssize_t>(sliver.size()));
  client.shutdown();  // orderly close, frame forever incomplete

  FramedSocket sock{std::move(server)};
  Poller poller;
  poller.add(sock.fd(), 1, /*want_read=*/true, /*want_write=*/false);

  std::vector<Poller::Event> events;
  bool finished = false;
  std::vector<std::vector<std::byte>> frames;
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (!finished && std::chrono::steady_clock::now() < deadline) {
    poller.wait(events, 100);
    for (const auto& ev : events) {
      if (ev.token != 1) continue;
      EXPECT_TRUE(ev.readable || ev.hup);
      if (!sock.on_readable(frames)) finished = true;
    }
  }
  EXPECT_TRUE(finished) << "EOF mid-frame never reported";
  EXPECT_TRUE(frames.empty()) << "a partial frame must not be delivered";
  poller.remove(sock.fd());
}

/// wake() aimed at a loop that has just torn down its only socket: the
/// eventfd must still fire (and be swallowed) with no stale events for
/// the removed fd.
TEST(Poller, WakeupAfterCloseIsSilent) {
  Poller poller;
  auto [client, server] = tcp_pair();
  FramedSocket sock{std::move(server)};
  poller.add(sock.fd(), 42, true, false);

  // Teardown: deregister, close, then a late wake from another thread —
  // the shutdown race every agent hits when stop() interrupts the loop.
  poller.remove(sock.fd());
  sock.shutdown();
  std::thread waker([&] { poller.wake(); });
  std::vector<Poller::Event> events;
  poller.wait(events, 1000);
  waker.join();
  for (const auto& ev : events) {
    EXPECT_NE(ev.token, 42u) << "event for a removed fd";
  }
}

/// Ten small frames queued back to back must coalesce into one batch
/// buffer (one writev) and come out the far side intact and in order.
TEST(FramedSocket, CoalescesSmallFramesIntoOneBatch) {
  auto [client, server] = tcp_pair();
  FramedSocket tx{std::move(client)};
  FramedSocket rx{std::move(server)};

  const auto before = FramedSocket::stats_snapshot();
  std::vector<std::vector<std::byte>> sent;
  for (int i = 0; i < 10; ++i) {
    sent.push_back(make_payload(64 + i, static_cast<std::uint8_t>(i)));
    tx.queue_frame(std::span<const std::byte>(sent.back()));
  }
  ASSERT_TRUE(tx.flush());
  EXPECT_FALSE(tx.want_write()) << "tiny batch should fit the socket buffer";
  const auto after = FramedSocket::stats_snapshot();
  EXPECT_EQ(after.batched_frames - before.batched_frames, 10u);
  EXPECT_EQ(after.flush_batches - before.flush_batches, 1u)
      << "ten small frames should cost one writev";

  Poller poller;
  poller.add(rx.fd(), 1, true, false);
  std::vector<std::vector<std::byte>> got;
  std::vector<Poller::Event> events;
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (got.size() < sent.size() &&
         std::chrono::steady_clock::now() < deadline) {
    poller.wait(events, 100);
    for (const auto& ev : events) {
      if (ev.token == 1) ASSERT_TRUE(rx.on_readable(got));
    }
  }
  ASSERT_EQ(got.size(), sent.size());
  for (std::size_t i = 0; i < sent.size(); ++i) {
    EXPECT_EQ(got[i], sent[i]) << "frame " << i;
  }
}

/// Force writev short-writes: a tiny SO_SNDBUF and far more queued bytes
/// than it holds. flush() must keep its cursor across partial writes and
/// every byte must arrive in order once the reader drains the other end.
TEST(FramedSocket, PartialWritevKeepsCursorAndDeliversEverything) {
  auto [client, server] = tcp_pair();
  const int sndbuf = 4096;
  ASSERT_EQ(::setsockopt(client.fd(), SOL_SOCKET, SO_SNDBUF, &sndbuf,
                         sizeof sndbuf),
            0);
  FramedSocket tx{std::move(client)};
  FramedSocket rx{std::move(server)};

  // 32 zero-copy frames of 8 KiB ≫ the send buffer: flush() must hit
  // EAGAIN mid-writev and leave want_write() set.
  const auto before = FramedSocket::stats_snapshot();
  std::vector<std::vector<std::byte>> sent;
  for (int i = 0; i < 32; ++i) {
    sent.push_back(make_payload(8192, static_cast<std::uint8_t>(i * 3)));
    tx.queue_frame(std::vector<std::byte>(sent.back()));
  }
  ASSERT_TRUE(tx.flush());
  EXPECT_TRUE(tx.want_write()) << "256 KiB cannot fit a 4 KiB send buffer";
  EXPECT_GT(tx.pending_bytes(), 0u);

  Poller poller;
  poller.add(tx.fd(), 1, false, true);
  poller.add(rx.fd(), 2, true, false);
  std::vector<std::vector<std::byte>> got;
  std::vector<Poller::Event> events;
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (got.size() < sent.size() &&
         std::chrono::steady_clock::now() < deadline) {
    poller.wait(events, 100);
    for (const auto& ev : events) {
      if (ev.token == 1 && ev.writable) {
        ASSERT_TRUE(tx.flush());
        if (!tx.want_write()) poller.modify(tx.fd(), 1, false, false);
      } else if (ev.token == 2 && (ev.readable || ev.hup)) {
        ASSERT_TRUE(rx.on_readable(got));
      }
    }
  }
  ASSERT_EQ(got.size(), sent.size());
  for (std::size_t i = 0; i < sent.size(); ++i) {
    EXPECT_EQ(got[i], sent[i]) << "frame " << i;
  }
  EXPECT_FALSE(tx.want_write());
  const auto after = FramedSocket::stats_snapshot();
  EXPECT_GT(after.partial_flushes - before.partial_flushes, 0u)
      << "the send buffer never backed up — partial path untested";
  EXPECT_EQ(after.zero_copy_frames - before.zero_copy_frames, 32u);
}

/// Writing into a peer that closed must fail the flush (EPIPE/ECONNRESET),
/// not crash or spin: this is how the agent notices a dead link when it
/// only ever writes to it.
TEST(FramedSocket, FlushIntoClosedPeerFails) {
  auto [client, server] = tcp_pair();
  FramedSocket tx{std::move(client)};
  {
    net::TcpStream dead = std::move(server);
    const struct linger lg {1, 0};
    ::setsockopt(dead.fd(), SOL_SOCKET, SO_LINGER, &lg, sizeof lg);
  }  // abortive close: RST

  // Give the RST time to land, then write until the failure surfaces
  // (the first flush after a reset may still be accepted by the kernel).
  bool failed = false;
  for (int i = 0; i < 50 && !failed; ++i) {
    tx.queue_frame(make_payload(1024, 9));
    failed = !tx.flush();
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  EXPECT_TRUE(failed) << "flush never reported the dead peer";
}

}  // namespace
