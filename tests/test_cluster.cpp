// Cluster tests: simulated network semantics, message-passing externals,
// distributed speculation join (abort propagation), and the full Figure 2
// scenario — the grid computation surviving node failure via rollback +
// checkpoint resurrection with an unchanged result.
#include <gtest/gtest.h>

#include <chrono>
#include <cmath>
#include <thread>

#include "cluster/cluster.hpp"
#include "frontend/compile.hpp"
#include "gridapp/heat.hpp"
#include "net/sim.hpp"

namespace {

using namespace mojave;

cluster::ClusterConfig small_cluster(std::uint32_t n) {
  cluster::ClusterConfig cfg;
  cfg.num_nodes = n;
  cfg.max_instructions = 500'000'000;
  cfg.recv_timeout_seconds = 20.0;
  return cfg;
}

TEST(SimNetwork, SendRecvBasics) {
  net::SimNetwork net(3);
  ASSERT_TRUE(net.send(0, 1, 7, {std::byte{0xab}}));
  std::vector<std::byte> out;
  EXPECT_EQ(net.recv(1, 0, 7, out), net::RecvStatus::kOk);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0], std::byte{0xab});
  // FIFO per (src, tag); distinct tags are independent.
  ASSERT_TRUE(net.send(0, 1, 7, {std::byte{1}}));
  ASSERT_TRUE(net.send(0, 1, 8, {std::byte{2}}));
  ASSERT_TRUE(net.send(0, 1, 7, {std::byte{3}}));
  EXPECT_EQ(net.recv(1, 0, 8, out), net::RecvStatus::kOk);
  EXPECT_EQ(out[0], std::byte{2});
  EXPECT_EQ(net.recv(1, 0, 7, out), net::RecvStatus::kOk);
  EXPECT_EQ(out[0], std::byte{1});
  EXPECT_EQ(net.recv(1, 0, 7, out), net::RecvStatus::kOk);
  EXPECT_EQ(out[0], std::byte{3});
}

TEST(SimNetwork, TimeoutAndFailure) {
  net::SimNetwork net(2);
  std::vector<std::byte> out;
  EXPECT_EQ(net.recv(0, 1, 1, out, 0.01), net::RecvStatus::kTimeout);

  // Queued messages are drained before a dead peer is reported.
  ASSERT_TRUE(net.send(1, 0, 1, {std::byte{9}}));
  net.kill(1);
  EXPECT_EQ(net.recv(0, 1, 1, out), net::RecvStatus::kOk);
  // The consumed tag is replayed from the message log (rollback support)…
  EXPECT_EQ(net.recv(0, 1, 1, out, 1.0), net::RecvStatus::kOk);
  EXPECT_EQ(out[0], std::byte{9});
  // …but a tag that was never delivered reports the dead peer.
  EXPECT_EQ(net.recv(0, 1, 3, out, 1.0), net::RecvStatus::kPeerFailed);
  EXPECT_FALSE(net.send(0, 1, 1, {}));  // sends to the dead are dropped
  EXPECT_FALSE(net.alive(1));

  net.revive(1);
  EXPECT_TRUE(net.alive(1));
  EXPECT_TRUE(net.send(0, 1, 2, {std::byte{5}}));
  EXPECT_EQ(net.recv(1, 0, 2, out), net::RecvStatus::kOk);
}

TEST(SimNetwork, KillWakesBlockedReceiver) {
  net::SimNetwork net(2);
  std::vector<std::byte> out;
  std::thread killer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    net.kill(1);
  });
  // Blocked forever unless the kill wakes us.
  EXPECT_EQ(net.recv(0, 1, 1, out), net::RecvStatus::kPeerFailed);
  killer.join();
}

TEST(SimNetwork, TransferTimeModel) {
  net::SimConfig cfg;
  cfg.bandwidth_bytes_per_sec = 100e6 / 8.0;  // 100 Mbps
  cfg.latency_seconds = 100e-6;
  net::SimNetwork net(2, cfg);
  // 1 MB at 100 Mbps ≈ 80 ms + latency.
  const double t = net.transfer_seconds(1'000'000);
  EXPECT_NEAR(t, 0.0801, 0.0005);
}

TEST(Tracker, PoisonPropagationAndVoiding) {
  cluster::DependencyTracker t;
  // Node 1 (at level 1) sends to node 2 (at level 1).
  t.record(1, 1, 2, 1);
  EXPECT_EQ(t.dependency_count(), 1u);
  // Node 1 rolls back level 1: node 2 is poisoned.
  const auto hit = t.on_rollback(1, 1);
  ASSERT_EQ(hit.size(), 1u);
  EXPECT_EQ(hit[0], 2u);
  EXPECT_TRUE(t.consume_poison(2));
  EXPECT_FALSE(t.consume_poison(2));  // one-shot
  EXPECT_EQ(t.dependency_count(), 0u);
}

TEST(Tracker, ReceiverRollbackVoidsItsConsumptions) {
  cluster::DependencyTracker t;
  // 2 consumed 1's speculative message while itself at level 1.
  t.record(1, 1, 2, 1);
  // 2 rolls back level 1 (for its own reasons): its consumption is undone,
  // so 1's later rollback must NOT poison it — this breaks abort ping-pong.
  (void)t.on_rollback(2, 1);
  EXPECT_EQ(t.dependency_count(), 0u);
  const auto hit = t.on_rollback(1, 1);
  EXPECT_TRUE(hit.empty());
  EXPECT_FALSE(t.consume_poison(2));
}

TEST(Tracker, CommitToZeroMakesDependenciesDurable) {
  cluster::DependencyTracker t;
  t.record(1, 1, 2, 1);  // sent at level 1
  t.record(1, 2, 3, 1);  // sent at level 2
  t.on_commit_to_zero(1);
  // Level-1 send is durable; the level-2 send became level-1.
  EXPECT_EQ(t.dependency_count(), 1u);
  const auto hit = t.on_rollback(1, 1);
  ASSERT_EQ(hit.size(), 1u);
  EXPECT_EQ(hit[0], 3u);
}

TEST(Cluster, PingPongMessages) {
  const std::string src = R"(
    extern int node_id();
    extern int msg_send(int, int, ptr, int);
    extern int msg_recv(int, int, ptr, int);
    int main() {
      int me = node_id();
      ptr buf = alloc(2);
      if (me == 0) {
        buf[0] = 41; buf[1] = 1;
        int s = msg_send(1, 5, buf, 2);
        if (s != 0) { return 10; }
        int r = msg_recv(1, 6, buf, 2);
        if (r != 0) { return 11; }
        return buf[0];
      }
      int r = msg_recv(0, 5, buf, 2);
      if (r != 0) { return 12; }
      buf[0] = buf[0] + buf[1];
      int s = msg_send(0, 6, buf, 2);
      if (s != 0) { return 13; }
      return 0;
    }
  )";
  cluster::Cluster cl(small_cluster(2));
  cl.launch_spmd(frontend::compile_source("pingpong", src));
  const auto results = cl.wait_all();
  ASSERT_EQ(results.size(), 2u);
  EXPECT_EQ(results[0].run.exit_code, 42);
  EXPECT_EQ(results[1].run.exit_code, 0);
  EXPECT_TRUE(results[0].error.empty());
}

TEST(Cluster, SpeculativeSenderAbortPoisonsReceiver) {
  // Node 0 sends from inside a speculation, then aborts it; node 1, which
  // consumed that value, must observe MSG_ROLL on its next receive and
  // abort its own speculation — "roll back together".
  const std::string src = R"(
    extern int node_id();
    extern int msg_send(int, int, ptr, int);
    extern int msg_recv(int, int, ptr, int);
    extern void sleep_ms(int);
    int main() {
      int me = node_id();
      ptr buf = alloc(1);
      if (me == 0) {
        int id = speculate();
        if (id > 0) {
          buf[0] = 777;  /* speculative value */
          int s = msg_send(1, 1, buf, 1);
          sleep_ms(30);  /* let node 1 consume it */
          abort(id);
        }
        /* aborted: tell node 1 we are done (non-speculative send) */
        buf[0] = 1;
        int s2 = msg_send(1, 2, buf, 1);
        return 0;
      }
      /* node 1 */
      ptr v = alloc(1);
      int id = speculate();
      if (id > 0) {
        int r = msg_recv(0, 1, v, 1);
        if (r != 0) { return 20; }
        /* consumed speculative 777; wait for the poison */
        int r2 = msg_recv(0, 2, v, 1);
        if (r2 == 1) { abort(id); }
        return 21;  /* should not get the tag-2 message cleanly */
      }
      /* our speculation was aborted because the sender rolled back */
      return 99;
    }
  )";
  cluster::Cluster cl(small_cluster(2));
  cl.launch_spmd(frontend::compile_source("join", src));
  const auto results = cl.wait_all();
  ASSERT_EQ(results.size(), 2u);
  EXPECT_EQ(results[0].run.exit_code, 0) << results[0].error;
  EXPECT_EQ(results[1].run.exit_code, 99) << results[1].error;
  EXPECT_GE(cl.tracker().poisons_issued(), 1u);
}

TEST(Grid, MatchesReferenceWithoutFaults) {
  gridapp::HeatConfig cfg;
  cfg.nodes = 4;
  cfg.rows = 16;
  cfg.cols = 12;
  cfg.steps = 20;
  cfg.checkpoint_interval = 0;
  const auto run = gridapp::run_heat(cfg, small_cluster(cfg.nodes));
  ASSERT_TRUE(run.all_clean);
  const auto ref = gridapp::heat_reference_sums(cfg);
  for (std::uint32_t r = 0; r < cfg.nodes; ++r) {
    EXPECT_NEAR(run.sums[r], ref[r], 1e-9) << "rank " << r;
  }
}

TEST(Grid, CheckpointingDoesNotChangeResult) {
  gridapp::HeatConfig cfg;
  cfg.nodes = 2;
  cfg.rows = 8;
  cfg.cols = 8;
  cfg.steps = 24;
  cfg.checkpoint_interval = 6;
  const auto run = gridapp::run_heat(cfg, small_cluster(cfg.nodes));
  ASSERT_TRUE(run.all_clean);
  const auto ref = gridapp::heat_reference_sums(cfg);
  for (std::uint32_t r = 0; r < cfg.nodes; ++r) {
    EXPECT_NEAR(run.sums[r], ref[r], 1e-9) << "rank " << r;
  }
}

TEST(Grid, SurvivesNodeFailureWithResurrection) {
  // The headline Figure 2 scenario: kill a node mid-run after it has
  // checkpointed; peers roll back their speculation; the resurrection
  // daemon revives the victim from its checkpoint; the final answer is
  // identical to the failure-free reference.
  gridapp::HeatConfig cfg;
  cfg.nodes = 3;
  cfg.rows = 12;
  cfg.cols = 10;
  cfg.steps = 60;
  cfg.checkpoint_interval = 10;

  auto ccfg = small_cluster(cfg.nodes);
  const auto run = gridapp::run_heat(
      cfg, ccfg, [&](cluster::Cluster& cl) {
        cl.enable_auto_resurrection(0.02);
        // Wait until the victim has written at least one checkpoint, so
        // resurrection has something to restore.
        for (int i = 0; i < 2000 && !cl.has_checkpoint(1); ++i) {
          std::this_thread::sleep_for(std::chrono::milliseconds(1));
        }
        ASSERT_TRUE(cl.has_checkpoint(1)) << "victim never checkpointed";
        cl.kill(1);
      });

  ASSERT_TRUE(run.all_clean);
  const auto ref = gridapp::heat_reference_sums(cfg);
  for (std::uint32_t r = 0; r < cfg.nodes; ++r) {
    EXPECT_NEAR(run.sums[r], ref[r], 1e-9) << "rank " << r;
  }
  // The victim restarted at least once; someone rolled back.
  std::uint64_t restarts = 0;
  std::uint64_t rollbacks = 0;
  for (const auto& node : run.nodes) {
    restarts += node.restarts;
    rollbacks += node.spec.rollbacks;
  }
  EXPECT_GE(restarts, 1u);
  EXPECT_GE(rollbacks, 1u);
}

}  // namespace
