// Cluster tests: simulated network semantics, message-passing externals,
// distributed speculation join (abort propagation), and the full Figure 2
// scenario — the grid computation surviving node failure via rollback +
// checkpoint resurrection with an unchanged result.
#include <gtest/gtest.h>

#include <chrono>
#include <cmath>
#include <deque>
#include <thread>

#include "cluster/cluster.hpp"
#include "cluster/tracker.hpp"
#include "frontend/compile.hpp"
#include "gridapp/heat.hpp"
#include "net/sim.hpp"
#include "support/rng.hpp"

namespace {

using namespace mojave;

cluster::ClusterConfig small_cluster(std::uint32_t n) {
  cluster::ClusterConfig cfg;
  cfg.num_nodes = n;
  cfg.max_instructions = 500'000'000;
  cfg.recv_timeout_seconds = 20.0;
  return cfg;
}

TEST(SimNetwork, SendRecvBasics) {
  net::SimNetwork net(3);
  ASSERT_TRUE(net.send(0, 1, 7, {std::byte{0xab}}));
  std::vector<std::byte> out;
  EXPECT_EQ(net.recv(1, 0, 7, out), net::RecvStatus::kOk);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0], std::byte{0xab});
  // FIFO per (src, tag); distinct tags are independent.
  ASSERT_TRUE(net.send(0, 1, 7, {std::byte{1}}));
  ASSERT_TRUE(net.send(0, 1, 8, {std::byte{2}}));
  ASSERT_TRUE(net.send(0, 1, 7, {std::byte{3}}));
  EXPECT_EQ(net.recv(1, 0, 8, out), net::RecvStatus::kOk);
  EXPECT_EQ(out[0], std::byte{2});
  EXPECT_EQ(net.recv(1, 0, 7, out), net::RecvStatus::kOk);
  EXPECT_EQ(out[0], std::byte{1});
  EXPECT_EQ(net.recv(1, 0, 7, out), net::RecvStatus::kOk);
  EXPECT_EQ(out[0], std::byte{3});
}

TEST(SimNetwork, TimeoutAndFailure) {
  net::SimNetwork net(2);
  std::vector<std::byte> out;
  EXPECT_EQ(net.recv(0, 1, 1, out, 0.01), net::RecvStatus::kTimeout);

  // Queued messages are drained before a dead peer is reported.
  ASSERT_TRUE(net.send(1, 0, 1, {std::byte{9}}));
  net.kill(1);
  EXPECT_EQ(net.recv(0, 1, 1, out), net::RecvStatus::kOk);
  // The consumed tag is replayed from the message log (rollback support)…
  EXPECT_EQ(net.recv(0, 1, 1, out, 1.0), net::RecvStatus::kOk);
  EXPECT_EQ(out[0], std::byte{9});
  // …but a tag that was never delivered reports the dead peer.
  EXPECT_EQ(net.recv(0, 1, 3, out, 1.0), net::RecvStatus::kPeerFailed);
  EXPECT_FALSE(net.send(0, 1, 1, {}));  // sends to the dead are dropped
  EXPECT_FALSE(net.alive(1));

  net.revive(1);
  EXPECT_TRUE(net.alive(1));
  EXPECT_TRUE(net.send(0, 1, 2, {std::byte{5}}));
  EXPECT_EQ(net.recv(1, 0, 2, out), net::RecvStatus::kOk);
}

TEST(SimNetwork, KillWakesBlockedReceiver) {
  net::SimNetwork net(2);
  std::vector<std::byte> out;
  std::thread killer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    net.kill(1);
  });
  // Blocked forever unless the kill wakes us.
  EXPECT_EQ(net.recv(0, 1, 1, out), net::RecvStatus::kPeerFailed);
  killer.join();
}

TEST(SimNetwork, TransferTimeModel) {
  net::SimConfig cfg;
  cfg.bandwidth_bytes_per_sec = 100e6 / 8.0;  // 100 Mbps
  cfg.latency_seconds = 100e-6;
  net::SimNetwork net(2, cfg);
  // 1 MB at 100 Mbps ≈ 80 ms + latency.
  const double t = net.transfer_seconds(1'000'000);
  EXPECT_NEAR(t, 0.0801, 0.0005);
}

TEST(Tracker, PoisonPropagationAndVoiding) {
  cluster::DependencyTracker t;
  // Node 1 (at level 1) sends to node 2 (at level 1).
  t.record(1, 1, 2, 1);
  EXPECT_EQ(t.dependency_count(), 1u);
  // Node 1 rolls back level 1: node 2 is poisoned.
  const auto hit = t.on_rollback(1, 1);
  ASSERT_EQ(hit.size(), 1u);
  EXPECT_EQ(hit[0], 2u);
  EXPECT_TRUE(t.consume_poison(2));
  EXPECT_FALSE(t.consume_poison(2));  // one-shot
  EXPECT_EQ(t.dependency_count(), 0u);
}

TEST(Tracker, ReceiverRollbackVoidsItsConsumptions) {
  cluster::DependencyTracker t;
  // 2 consumed 1's speculative message while itself at level 1.
  t.record(1, 1, 2, 1);
  // 2 rolls back level 1 (for its own reasons): its consumption is undone,
  // so 1's later rollback must NOT poison it — this breaks abort ping-pong.
  (void)t.on_rollback(2, 1);
  EXPECT_EQ(t.dependency_count(), 0u);
  const auto hit = t.on_rollback(1, 1);
  EXPECT_TRUE(hit.empty());
  EXPECT_FALSE(t.consume_poison(2));
}

TEST(Tracker, CommitToZeroMakesDependenciesDurable) {
  cluster::DependencyTracker t;
  t.record(1, 1, 2, 1);  // sent at level 1
  t.record(1, 2, 3, 1);  // sent at level 2
  t.on_commit_to_zero(1);
  // Level-1 send is durable; the level-2 send became level-1.
  EXPECT_EQ(t.dependency_count(), 1u);
  const auto hit = t.on_rollback(1, 1);
  ASSERT_EQ(hit.size(), 1u);
  EXPECT_EQ(hit[0], 3u);
}

TEST(Cluster, PingPongMessages) {
  const std::string src = R"(
    extern int node_id();
    extern int msg_send(int, int, ptr, int);
    extern int msg_recv(int, int, ptr, int);
    int main() {
      int me = node_id();
      ptr buf = alloc(2);
      if (me == 0) {
        buf[0] = 41; buf[1] = 1;
        int s = msg_send(1, 5, buf, 2);
        if (s != 0) { return 10; }
        int r = msg_recv(1, 6, buf, 2);
        if (r != 0) { return 11; }
        return buf[0];
      }
      int r = msg_recv(0, 5, buf, 2);
      if (r != 0) { return 12; }
      buf[0] = buf[0] + buf[1];
      int s = msg_send(0, 6, buf, 2);
      if (s != 0) { return 13; }
      return 0;
    }
  )";
  cluster::Cluster cl(small_cluster(2));
  cl.launch_spmd(frontend::compile_source("pingpong", src));
  const auto results = cl.wait_all();
  ASSERT_EQ(results.size(), 2u);
  EXPECT_EQ(results[0].run.exit_code, 42);
  EXPECT_EQ(results[1].run.exit_code, 0);
  EXPECT_TRUE(results[0].error.empty());
}

TEST(Cluster, SpeculativeSenderAbortPoisonsReceiver) {
  // Node 0 sends from inside a speculation, then aborts it; node 1, which
  // consumed that value, must observe MSG_ROLL on its next receive and
  // abort its own speculation — "roll back together".
  const std::string src = R"(
    extern int node_id();
    extern int msg_send(int, int, ptr, int);
    extern int msg_recv(int, int, ptr, int);
    extern void sleep_ms(int);
    int main() {
      int me = node_id();
      ptr buf = alloc(1);
      if (me == 0) {
        int id = speculate();
        if (id > 0) {
          buf[0] = 777;  /* speculative value */
          int s = msg_send(1, 1, buf, 1);
          sleep_ms(30);  /* let node 1 consume it */
          abort(id);
        }
        /* aborted: tell node 1 we are done (non-speculative send) */
        buf[0] = 1;
        int s2 = msg_send(1, 2, buf, 1);
        return 0;
      }
      /* node 1 */
      ptr v = alloc(1);
      int id = speculate();
      if (id > 0) {
        int r = msg_recv(0, 1, v, 1);
        if (r != 0) { return 20; }
        /* consumed speculative 777; wait for the poison */
        int r2 = msg_recv(0, 2, v, 1);
        if (r2 == 1) { abort(id); }
        return 21;  /* should not get the tag-2 message cleanly */
      }
      /* our speculation was aborted because the sender rolled back */
      return 99;
    }
  )";
  cluster::Cluster cl(small_cluster(2));
  cl.launch_spmd(frontend::compile_source("join", src));
  const auto results = cl.wait_all();
  ASSERT_EQ(results.size(), 2u);
  EXPECT_EQ(results[0].run.exit_code, 0) << results[0].error;
  EXPECT_EQ(results[1].run.exit_code, 99) << results[1].error;
  EXPECT_GE(cl.tracker().poisons_issued(), 1u);
}

// --- DependencyTracker property tests ---------------------------------
//
// Seeded random interleavings of record / rollback / commit across 4+
// nodes. Two properties the wire protocol leans on:
//
//  * every abort avalanche terminates — each poison consumes a recorded
//    dependency and rollbacks only erase records, so the cascade runs out
//    of fuel instead of ping-ponging between neighbours forever;
//  * commit-to-zero discharges level-1 dependencies — a later rollback of
//    the (new) speculation must not poison consumers of data that was
//    already durable ("no stale poison after commit").

/// Drive one poison avalanche to completion: every poisoned node consumes
/// its poison and rolls back at level 1 (what a real poisoned rank does),
/// possibly poisoning others. Returns how many rollbacks it took; fails
/// the test if the cascade exceeds `bound` steps.
std::size_t drain_avalanche(cluster::DependencyTracker& t,
                            std::vector<net::NodeId> poisoned,
                            std::size_t bound) {
  std::deque<net::NodeId> work(poisoned.begin(), poisoned.end());
  std::size_t steps = 0;
  while (!work.empty()) {
    EXPECT_LT(steps, bound) << "avalanche did not terminate";
    if (steps >= bound) return steps;
    const net::NodeId n = work.front();
    work.pop_front();
    if (!t.consume_poison(n)) continue;  // duplicate hit, already handled
    ++steps;
    for (const net::NodeId next : t.on_rollback(n, 1)) work.push_back(next);
  }
  return steps;
}

TEST(ClusterTrackerProps, RandomInterleavingsAvalancheAlwaysTerminates) {
  for (std::uint64_t seed = 1; seed <= 25; ++seed) {
    Rng rng(seed);
    cluster::DependencyTracker t;
    const std::uint32_t nodes = 4 + static_cast<std::uint32_t>(rng.below(3));
    for (int op = 0; op < 400; ++op) {
      const double dice = rng.uniform();
      if (dice < 0.6) {
        const auto s = static_cast<net::NodeId>(rng.below(nodes));
        auto r = static_cast<net::NodeId>(rng.below(nodes));
        if (r == s) r = (r + 1) % nodes;
        t.record(s, static_cast<SpecLevel>(1 + rng.below(3)), r,
                 static_cast<SpecLevel>(rng.below(4)));
      } else if (dice < 0.85) {
        // A rollback can poison at most the recorded dependencies, and
        // every cascade step erases records — bound the whole avalanche
        // by the dependency count at its start (plus the initial hit).
        const std::size_t fuel = t.dependency_count();
        auto hit = t.on_rollback(static_cast<net::NodeId>(rng.below(nodes)),
                                 static_cast<SpecLevel>(1 + rng.below(3)));
        drain_avalanche(t, std::move(hit), fuel + nodes + 1);
      } else {
        t.on_commit_to_zero(static_cast<net::NodeId>(rng.below(nodes)));
      }
      if (::testing::Test::HasFailure()) {
        FAIL() << "seed " << seed << ", op " << op;
      }
    }
    // Quiesce: roll everything back; no poison may survive its consumer.
    for (net::NodeId n = 0; n < nodes; ++n) {
      drain_avalanche(t, t.on_rollback(n, 1), t.dependency_count() + nodes);
    }
    for (net::NodeId n = 0; n < nodes; ++n) {
      EXPECT_FALSE(t.consume_poison(n)) << "stale poison, seed " << seed;
    }
    EXPECT_EQ(t.dependency_count(), 0u) << "seed " << seed;
  }
}

TEST(ClusterTrackerProps, CommitToZeroLeavesNoStalePoison) {
  for (std::uint64_t seed = 1; seed <= 25; ++seed) {
    Rng rng(seed);
    cluster::DependencyTracker t;
    const std::uint32_t nodes = 4;
    // A batch of level-1 sends from node 0, randomly interleaved with
    // deeper ones that commit-to-zero must *keep* (shifted down a level).
    int deep = 0;
    for (int i = 0; i < 40; ++i) {
      const auto r = static_cast<net::NodeId>(1 + rng.below(nodes - 1));
      if (rng.chance(0.3)) {
        t.record(0, 2, r, static_cast<SpecLevel>(rng.below(3)));
        ++deep;
      } else {
        t.record(0, 1, r, static_cast<SpecLevel>(rng.below(3)));
      }
    }
    t.on_commit_to_zero(0);
    // Level-1 records were discharged; the level-2 ones shifted to 1.
    EXPECT_EQ(t.dependency_count(), static_cast<std::size_t>(deep))
        << "seed " << seed;
    // Rolling back the *new* level 1 may only hit the shifted survivors —
    // and after that, nothing: committed data can never poison anyone.
    const auto hit = t.on_rollback(0, 1);
    EXPECT_LE(hit.size(), static_cast<std::size_t>(deep)) << "seed " << seed;
    drain_avalanche(t, hit, static_cast<std::size_t>(deep) + nodes);
    EXPECT_TRUE(t.on_rollback(0, 1).empty()) << "seed " << seed;
    for (net::NodeId n = 0; n < nodes; ++n) {
      EXPECT_FALSE(t.consume_poison(n)) << "stale poison, seed " << seed;
    }
  }
}

TEST(ClusterTrackerProps, ConcurrentRecordRollbackCommitIsRaceFree) {
  // The coordinator's reader threads hit the tracker concurrently; this
  // exists so the TSan job sweeps its locking. Assertions are minimal —
  // the single-thread property tests pin the semantics.
  cluster::DependencyTracker t;
  constexpr std::uint32_t kNodes = 6;
  std::vector<std::thread> threads;
  for (std::uint64_t ti = 0; ti < 4; ++ti) {
    threads.emplace_back([&t, ti] {
      Rng rng(0xC0FFEE + ti);
      for (int op = 0; op < 2000; ++op) {
        const double dice = rng.uniform();
        const auto a = static_cast<net::NodeId>(rng.below(kNodes));
        auto b = static_cast<net::NodeId>(rng.below(kNodes));
        if (b == a) b = (b + 1) % kNodes;
        if (dice < 0.6) {
          t.record(a, static_cast<SpecLevel>(1 + rng.below(3)), b,
                   static_cast<SpecLevel>(rng.below(4)));
        } else if (dice < 0.85) {
          for (const net::NodeId p :
               t.on_rollback(a, static_cast<SpecLevel>(1 + rng.below(3)))) {
            t.consume_poison(p);
          }
        } else {
          t.on_commit_to_zero(a);
        }
      }
    });
  }
  for (std::thread& th : threads) th.join();
  for (net::NodeId n = 0; n < kNodes; ++n) {
    drain_avalanche(t, t.on_rollback(n, 1), t.dependency_count() + kNodes);
  }
  EXPECT_EQ(t.dependency_count(), 0u);
}

TEST(Grid, MatchesReferenceWithoutFaults) {
  gridapp::HeatConfig cfg;
  cfg.nodes = 4;
  cfg.rows = 16;
  cfg.cols = 12;
  cfg.steps = 20;
  cfg.checkpoint_interval = 0;
  const auto run = gridapp::run_heat(cfg, small_cluster(cfg.nodes));
  ASSERT_TRUE(run.all_clean);
  const auto ref = gridapp::heat_reference_sums(cfg);
  for (std::uint32_t r = 0; r < cfg.nodes; ++r) {
    EXPECT_NEAR(run.sums[r], ref[r], 1e-9) << "rank " << r;
  }
}

TEST(Grid, CheckpointingDoesNotChangeResult) {
  gridapp::HeatConfig cfg;
  cfg.nodes = 2;
  cfg.rows = 8;
  cfg.cols = 8;
  cfg.steps = 24;
  cfg.checkpoint_interval = 6;
  const auto run = gridapp::run_heat(cfg, small_cluster(cfg.nodes));
  ASSERT_TRUE(run.all_clean);
  const auto ref = gridapp::heat_reference_sums(cfg);
  for (std::uint32_t r = 0; r < cfg.nodes; ++r) {
    EXPECT_NEAR(run.sums[r], ref[r], 1e-9) << "rank " << r;
  }
}

TEST(Grid, SurvivesNodeFailureWithResurrection) {
  // The headline Figure 2 scenario: kill a node mid-run after it has
  // checkpointed; peers roll back their speculation; the resurrection
  // daemon revives the victim from its checkpoint; the final answer is
  // identical to the failure-free reference.
  gridapp::HeatConfig cfg;
  cfg.nodes = 3;
  cfg.rows = 12;
  cfg.cols = 10;
  cfg.steps = 60;
  cfg.checkpoint_interval = 10;

  auto ccfg = small_cluster(cfg.nodes);
  const auto run = gridapp::run_heat(
      cfg, ccfg, [&](cluster::Cluster& cl) {
        cl.enable_auto_resurrection(0.02);
        // Wait until the victim has written at least one checkpoint, so
        // resurrection has something to restore.
        for (int i = 0; i < 2000 && !cl.has_checkpoint(1); ++i) {
          std::this_thread::sleep_for(std::chrono::milliseconds(1));
        }
        ASSERT_TRUE(cl.has_checkpoint(1)) << "victim never checkpointed";
        cl.kill(1);
      });

  ASSERT_TRUE(run.all_clean);
  const auto ref = gridapp::heat_reference_sums(cfg);
  for (std::uint32_t r = 0; r < cfg.nodes; ++r) {
    EXPECT_NEAR(run.sums[r], ref[r], 1e-9) << "rank " << r;
  }
  // The victim restarted at least once; someone rolled back.
  std::uint64_t restarts = 0;
  std::uint64_t rollbacks = 0;
  for (const auto& node : run.nodes) {
    restarts += node.restarts;
    rollbacks += node.spec.rollbacks;
  }
  EXPECT_GE(restarts, 1u);
  EXPECT_GE(rollbacks, 1u);
}

}  // namespace
