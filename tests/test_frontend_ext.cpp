// Tests for the extended MojC syntax (for / do-while / compound
// assignment / ++ / --), and the migration-equivalence property: a
// program that checkpoints mid-run and is resumed must compute exactly
// what the uninterrupted program computes — for randomized programs.
#include <gtest/gtest.h>

#include <filesystem>

#include "frontend/compile.hpp"
#include "migrate/image.hpp"
#include "migrate/migrator.hpp"
#include "support/rng.hpp"
#include "vm/process.hpp"

namespace {

using namespace mojave;
namespace fs = std::filesystem;

std::int64_t run_mojc(const std::string& src) {
  vm::ProcessConfig cfg;
  cfg.max_instructions = 50'000'000;
  vm::Process p(frontend::compile_source("t", src), cfg);
  const auto r = p.run();
  EXPECT_EQ(r.kind, vm::RunResult::Kind::kHalted);
  return r.exit_code;
}

TEST(FrontendExt, ForLoop) {
  EXPECT_EQ(run_mojc("int main() { int acc = 0;"
                     "  for (int i = 1; i <= 10; i++) { acc += i; }"
                     "  return acc; }"),
            55);
}

TEST(FrontendExt, ForLoopContinueRunsStep) {
  // If continue skipped the step, this would loop forever (caught by the
  // instruction fuse); correct semantics: 0+1+2+4 = 7 for i in 0..4 \ {3}.
  EXPECT_EQ(run_mojc("int main() { int acc = 0;"
                     "  for (int i = 0; i < 5; i++) {"
                     "    if (i == 3) { continue; }"
                     "    acc += i;"
                     "  }"
                     "  return acc; }"),
            7);
}

TEST(FrontendExt, ForLoopBreakAndInfiniteHeader) {
  EXPECT_EQ(run_mojc("int main() { int n = 0;"
                     "  for (;;) { n++; if (n == 9) { break; } }"
                     "  return n; }"),
            9);
}

TEST(FrontendExt, ForScopesInitVariable) {
  // The induction variable is scoped to the loop.
  EXPECT_THROW(
      (void)run_mojc("int main() { for (int i = 0; i < 3; i++) { } "
                     "return i; }"),
      TypeError);
}

TEST(FrontendExt, NestedForLoops) {
  EXPECT_EQ(run_mojc("int main() { int acc = 0;"
                     "  for (int i = 0; i < 4; i++) {"
                     "    for (int j = 0; j < 4; j++) {"
                     "      if (j > i) { continue; }"
                     "      acc += 1;"
                     "    }"
                     "  }"
                     "  return acc; }"),
            10);  // 1+2+3+4
}

TEST(FrontendExt, DoWhileRunsAtLeastOnce) {
  EXPECT_EQ(run_mojc("int main() { int n = 0;"
                     "  do { n++; } while (n < 0);"
                     "  return n; }"),
            1);
  EXPECT_EQ(run_mojc("int main() { int n = 0;"
                     "  do { n += 2; } while (n < 10);"
                     "  return n; }"),
            10);
}

TEST(FrontendExt, CompoundAssignmentOnScalars) {
  EXPECT_EQ(run_mojc("int main() { int x = 7;"
                     "  x += 3; x *= 2; x -= 4; x /= 2; x %= 5;"
                     "  return x; }"),
            3);  // ((7+3)*2-4)/2 = 8; 8%5 = 3
}

TEST(FrontendExt, CompoundAssignmentOnSlots) {
  EXPECT_EQ(run_mojc("int main() { ptr a = alloc(3); int i = 1;"
                     "  a[i] = 10;"
                     "  a[i] += 5;"
                     "  a[i + 0] *= 2;"
                     "  return a[1]; }"),
            30);
}

TEST(FrontendExt, IncrementDecrementStatements) {
  EXPECT_EQ(run_mojc("int main() { int x = 5; x++; x++; x--; return x; }"),
            6);
}

TEST(FrontendExt, FloatCompoundAssignment) {
  EXPECT_EQ(run_mojc("int main() { float f = 1.5; f += 2.5; f *= 2.0;"
                     "  return f2i(f); }"),
            8);
}

// --- Migration equivalence property ------------------------------------------

/// Generate a random MojC program with a checkpoint in the middle of its
/// computation; run it straight through (checkpoint protocol continues),
/// then resume the written image and compare: the resumed run must finish
/// with the same result as the uninterrupted run's remainder.
class MigrateEquivalence : public ::testing::TestWithParam<std::uint64_t> {};

std::string random_program(Rng& rng, const std::string& ckpt_path) {
  std::ostringstream src;
  src << "int main() {\n  int acc = " << rng.below(100) << ";\n"
      << "  ptr a = alloc(8);\n"
      << "  for (int i = 0; i < 8; i++) { a[i] = i * "
      << (1 + rng.below(9)) << "; }\n";
  // Phase 1: some arithmetic.
  for (int i = 0; i < 6; ++i) {
    switch (rng.below(4)) {
      case 0: src << "  acc += a[" << rng.below(8) << "];\n"; break;
      case 1: src << "  acc *= " << (1 + rng.below(4)) << ";\n"; break;
      case 2: src << "  acc -= " << rng.below(50) << ";\n"; break;
      default:
        src << "  if (acc % 2 == 0) { acc += 7; } else { acc -= 3; }\n";
    }
  }
  src << "  migrate(\"checkpoint://" << ckpt_path << "\");\n";
  // Phase 2: more arithmetic after the checkpoint.
  for (int i = 0; i < 6; ++i) {
    switch (rng.below(3)) {
      case 0: src << "  acc += a[" << rng.below(8) << "] + " << i << ";\n";
        break;
      case 1: src << "  acc ^= " << rng.below(255) << ";\n"; break;
      default: src << "  for (int k = 0; k < 3; k++) { acc += k; }\n";
    }
  }
  src << "  return acc & 65535;\n}\n";
  return src.str();
}

TEST_P(MigrateEquivalence, ResumedRunMatchesUninterruptedRun) {
  Rng rng(GetParam());
  const fs::path dir = fs::temp_directory_path() / "mojave_equiv";
  fs::create_directories(dir);
  const fs::path ckpt =
      dir / ("s" + std::to_string(GetParam()) + ".img");
  fs::remove(ckpt);

  const std::string src = random_program(rng, ckpt.string());
  fir::Program program = frontend::compile_source("equiv", src);

  // Uninterrupted run (the checkpoint protocol continues execution).
  vm::Process straight(fir::clone_program(program));
  migrate::Migrator mig(straight);
  const auto direct = straight.run();
  ASSERT_EQ(direct.kind, vm::RunResult::Kind::kHalted);
  ASSERT_TRUE(fs::exists(ckpt));

  // Resume the image: phase 2 recomputes from the checkpointed state.
  const auto resumed = migrate::resurrect_from_file(
      ckpt, {.cfg = {}, .prepare = [](vm::Process& proc) {
               proc.adopt_hook(std::make_unique<migrate::Migrator>(proc));
             }});
  ASSERT_EQ(resumed.run.kind, vm::RunResult::Kind::kHalted);
  EXPECT_EQ(resumed.run.exit_code, direct.exit_code) << src;
}

INSTANTIATE_TEST_SUITE_P(Seeds, MigrateEquivalence,
                         ::testing::Values(7, 14, 21, 28, 35, 42, 49, 56, 63,
                                           70));

}  // namespace
