// Engine (umbrella API) tests: compile/run/resume/serve round trips, the
// exact surface the mojc CLI and downstream embedders use.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "core/engine.hpp"

namespace {

using namespace mojave;
namespace fs = std::filesystem;

TEST(Engine, RunSource) {
  Engine engine;
  const auto result = engine.run_source("t", "int main() { return 6 * 7; }");
  EXPECT_EQ(result.run.exit_code, 42);
  EXPECT_GT(result.vm.instructions, 0u);
}

TEST(Engine, OptimizerIsOnByDefaultAndCanBeDisabled) {
  const std::string src =
      "int main() { int a = 2 + 3; int b = a * a; return b; }";
  Engine on;
  EngineOptions off_opts;
  off_opts.optimize = false;
  Engine off(off_opts);
  const auto r_on = on.run_source("t", src);
  const auto r_off = off.run_source("t", src);
  EXPECT_EQ(r_on.run.exit_code, 25);
  EXPECT_EQ(r_off.run.exit_code, 25);
  // The optimized program executes strictly fewer instructions.
  EXPECT_LT(r_on.vm.instructions, r_off.vm.instructions);
}

TEST(Engine, CompileFileAndRunFile) {
  const fs::path dir = fs::temp_directory_path() / "mojave_engine_test";
  fs::create_directories(dir);
  const fs::path src = dir / "prog.mjc";
  {
    std::ofstream f(src);
    f << "int main() { print_string(\"file!\"); return 3; }";
  }
  Engine engine;
  const fir::Program program = engine.compile_file(src);
  EXPECT_EQ(program.name, "prog");
  EXPECT_EQ(engine.run_file(src).run.exit_code, 3);
}

TEST(Engine, CheckpointThenResumeFile) {
  const fs::path dir = fs::temp_directory_path() / "mojave_engine_ckpt";
  fs::create_directories(dir);
  const fs::path img = dir / "state.img";
  fs::remove(img);

  Engine engine;
  const std::string src = "int main() {"
                          "  int x = 10;"
                          "  migrate(\"suspend://" + img.string() + "\");"
                          "  return x + 32;"
                          "}";
  const auto first = engine.run_source("ckpt", src);
  EXPECT_EQ(first.run.kind, vm::RunResult::Kind::kMigratedAway);
  ASSERT_TRUE(fs::exists(img));

  const auto resumed = engine.resume_file(img);
  EXPECT_EQ(resumed.run.kind, vm::RunResult::Kind::kHalted);
  EXPECT_EQ(resumed.run.exit_code, 42);
}

TEST(Engine, ServeAcceptsMigrationsFromAnotherEngine) {
  Engine server_engine;
  const std::uint16_t port = server_engine.serve(0);
  ASSERT_GT(port, 0);

  Engine client;
  const std::string src =
      "int main() {"
      "  int x = 41;"
      "  migrate(\"migrate://127.0.0.1:" + std::to_string(port) + "\");"
      "  return x + 1;"
      "}";
  const auto local = client.run_source("hop", src);
  EXPECT_EQ(local.run.kind, vm::RunResult::Kind::kMigratedAway);
  server_engine.stop_server();
}

TEST(Engine, MissingFileIsAnError) {
  Engine engine;
  EXPECT_THROW((void)engine.run_file("/no/such/file.mjc"), Error);
  EXPECT_THROW((void)engine.resume_file("/no/such/image.img"), Error);
}

TEST(Engine, DumpFirGoesToTheConfiguredStream) {
  std::ostringstream dump;
  EngineOptions opts;
  opts.dump_fir = &dump;
  Engine engine(opts);
  (void)engine.run_source("d", "int main() { return 1; }");
  EXPECT_NE(dump.str().find("fun main"), std::string::npos);
  EXPECT_NE(dump.str().find("halt"), std::string::npos);
}

}  // namespace
