// VM property sweeps: every arithmetic operator is checked against native
// C++ semantics over a grid of operands (TEST_P), runtime safety checks
// fire on every class of violation, and the instruction fuse works.
#include <gtest/gtest.h>

#include <cmath>

#include "fir/builder.hpp"
#include "vm/process.hpp"

namespace {

using namespace mojave;
using fir::Atom;
using fir::Binop;
using fir::ProgramBuilder;
using fir::Type;
using fir::Unop;

std::int64_t run_int_binop(Binop op, std::int64_t a, std::int64_t b) {
  ProgramBuilder pb("binop");
  auto main_id = pb.declare("main", {});
  {
    auto fb = pb.define(main_id, {});
    auto x = fb.let_binop("x", op, Atom::integer(a), Atom::integer(b));
    fb.halt(fb.v(x));
  }
  vm::Process p(pb.take("main"));
  return p.run().exit_code;
}

double run_float_binop(Binop op, double a, double b) {
  ProgramBuilder pb("fbinop");
  auto main_id = pb.declare("main", {});
  {
    auto fb = pb.define(main_id, {});
    auto x = fb.let_binop("x", op, Atom::real(a), Atom::real(b));
    auto bits = fb.let_external("u", Type::unit(), "print_float", {fb.v(x)});
    (void)bits;
    fb.halt(Atom::integer(0));
  }
  std::ostringstream out;
  vm::ProcessConfig cfg;
  cfg.output = &out;
  vm::Process p(pb.take("main"), cfg);
  (void)p.run();
  return std::stod(out.str());
}

struct OperandPair {
  std::int64_t a;
  std::int64_t b;
};

class IntArithProperty : public ::testing::TestWithParam<OperandPair> {};

TEST_P(IntArithProperty, MatchesNativeSemantics) {
  const auto [a, b] = GetParam();
  EXPECT_EQ(run_int_binop(Binop::kAdd, a, b), a + b);
  EXPECT_EQ(run_int_binop(Binop::kSub, a, b), a - b);
  EXPECT_EQ(run_int_binop(Binop::kMul, a, b), a * b);
  EXPECT_EQ(run_int_binop(Binop::kAnd, a, b), a & b);
  EXPECT_EQ(run_int_binop(Binop::kOr, a, b), a | b);
  EXPECT_EQ(run_int_binop(Binop::kXor, a, b), a ^ b);
  EXPECT_EQ(run_int_binop(Binop::kShl, a, b), a << (b & 63));
  EXPECT_EQ(run_int_binop(Binop::kShr, a, b), a >> (b & 63));
  EXPECT_EQ(run_int_binop(Binop::kLt, a, b), a < b ? 1 : 0);
  EXPECT_EQ(run_int_binop(Binop::kLe, a, b), a <= b ? 1 : 0);
  EXPECT_EQ(run_int_binop(Binop::kGt, a, b), a > b ? 1 : 0);
  EXPECT_EQ(run_int_binop(Binop::kGe, a, b), a >= b ? 1 : 0);
  EXPECT_EQ(run_int_binop(Binop::kEq, a, b), a == b ? 1 : 0);
  EXPECT_EQ(run_int_binop(Binop::kNe, a, b), a != b ? 1 : 0);
  if (b != 0) {
    EXPECT_EQ(run_int_binop(Binop::kDiv, a, b), a / b);
    EXPECT_EQ(run_int_binop(Binop::kMod, a, b), a % b);
  } else {
    EXPECT_THROW((void)run_int_binop(Binop::kDiv, a, b), SafetyError);
    EXPECT_THROW((void)run_int_binop(Binop::kMod, a, b), SafetyError);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, IntArithProperty,
    ::testing::Values(OperandPair{0, 0}, OperandPair{1, 2},
                      OperandPair{-7, 3}, OperandPair{7, -3},
                      OperandPair{1 << 20, 5}, OperandPair{-1, 63},
                      OperandPair{123456789, 987654}, OperandPair{5, 0}));

TEST(VmFloat, FloatOpsMatchNative) {
  EXPECT_DOUBLE_EQ(run_float_binop(Binop::kFAdd, 1.5, 2.25), 3.75);
  EXPECT_DOUBLE_EQ(run_float_binop(Binop::kFSub, 1.5, 2.25), -0.75);
  EXPECT_DOUBLE_EQ(run_float_binop(Binop::kFMul, 1.5, 2.0), 3.0);
  EXPECT_DOUBLE_EQ(run_float_binop(Binop::kFDiv, 3.0, 2.0), 1.5);
}

std::int64_t run_unop(Unop op, std::int64_t a) {
  ProgramBuilder pb("unop");
  auto main_id = pb.declare("main", {});
  {
    auto fb = pb.define(main_id, {});
    auto x = fb.let_unop("x", op, Atom::integer(a));
    fb.halt(fb.v(x));
  }
  vm::Process p(pb.take("main"));
  return p.run().exit_code;
}

TEST(VmUnop, IntUnops) {
  EXPECT_EQ(run_unop(Unop::kNeg, 5), -5);
  EXPECT_EQ(run_unop(Unop::kNot, 0), 1);
  EXPECT_EQ(run_unop(Unop::kNot, 9), 0);
  EXPECT_EQ(run_unop(Unop::kBitNot, 0), -1);
}

TEST(VmSafety, NullPointerDereferenceTraps) {
  ProgramBuilder pb("null");
  auto main_id = pb.declare("main", {});
  {
    auto fb = pb.define(main_id, {});
    auto n = fb.let_atom("n", Type::ptr(), Atom::null_ptr());
    auto x = fb.let_read("x", Type::integer(), fb.v(n), Atom::integer(0));
    fb.halt(fb.v(x));
  }
  vm::Process p(pb.take("main"));
  EXPECT_THROW((void)p.run(), SafetyError);
}

TEST(VmSafety, ReadWithWrongExpectedTagTraps) {
  ProgramBuilder pb("tag");
  auto main_id = pb.declare("main", {});
  {
    auto fb = pb.define(main_id, {});
    auto b = fb.let_alloc("b", Atom::integer(1), Atom::real(1.5));
    auto x = fb.let_read("x", Type::integer(), fb.v(b), Atom::integer(0));
    fb.halt(fb.v(x));
  }
  vm::Process p(pb.take("main"));
  EXPECT_THROW((void)p.run(), SafetyError);
}

TEST(VmSafety, NegativeAllocationTraps) {
  ProgramBuilder pb("neg");
  auto main_id = pb.declare("main", {});
  {
    auto fb = pb.define(main_id, {});
    auto b = fb.let_alloc("b", Atom::integer(-3), Atom::integer(0));
    (void)b;
    fb.halt(Atom::integer(0));
  }
  vm::Process p(pb.take("main"));
  EXPECT_THROW((void)p.run(), SafetyError);
}

TEST(VmSafety, NegativeEffectiveOffsetTraps) {
  ProgramBuilder pb("off");
  auto main_id = pb.declare("main", {});
  {
    auto fb = pb.define(main_id, {});
    auto b = fb.let_alloc("b", Atom::integer(4), Atom::integer(0));
    auto x = fb.let_read("x", Type::integer(), fb.v(b), Atom::integer(-1));
    fb.halt(fb.v(x));
  }
  vm::Process p(pb.take("main"));
  EXPECT_THROW((void)p.run(), SafetyError);
}

TEST(VmSafety, PtrAddDerivedPointersAreBoundsCheckedAtUse) {
  ProgramBuilder pb("derived");
  auto main_id = pb.declare("main", {});
  {
    auto fb = pb.define(main_id, {});
    auto b = fb.let_alloc("b", Atom::integer(4), Atom::integer(7));
    auto p = fb.let_ptr_add("p", fb.v(b), Atom::integer(3));
    auto ok = fb.let_read("ok", Type::integer(), fb.v(p), Atom::integer(0));
    // p points at slot 3; reading p[1] = slot 4 is out of bounds.
    auto bad = fb.let_read("bad", Type::integer(), fb.v(p), Atom::integer(1));
    auto sum = fb.let_binop("s", Binop::kAdd, fb.v(ok), fb.v(bad));
    fb.halt(fb.v(sum));
  }
  vm::Process p(pb.take("main"));
  EXPECT_THROW((void)p.run(), SafetyError);
}

TEST(VmSafety, UnregisteredExternalTraps) {
  ProgramBuilder pb("ext");
  auto main_id = pb.declare("main", {});
  {
    auto fb = pb.define(main_id, {});
    auto x = fb.let_external("x", Type::integer(), "no_such_host_fn", {});
    fb.halt(fb.v(x));
  }
  vm::Process p(pb.take("main"));
  EXPECT_THROW((void)p.run(), SafetyError);
}

TEST(VmSafety, ExternalResultTagIsChecked) {
  ProgramBuilder pb("extret");
  auto main_id = pb.declare("main", {});
  {
    auto fb = pb.define(main_id, {});
    auto x = fb.let_external("x", Type::integer(), "lying_external", {});
    fb.halt(fb.v(x));
  }
  vm::Process p(pb.take("main"));
  p.vm().register_external(
      "lying_external",
      [](vm::Interpreter&, std::span<const runtime::Value>) {
        return runtime::Value::from_float(1.0);  // declared int!
      });
  EXPECT_THROW((void)p.run(), SafetyError);
}

TEST(VmFuel, InstructionBudgetStopsRunawayLoops) {
  ProgramBuilder pb("spin");
  auto main_id = pb.declare("main", {});
  auto loop_id = pb.declare("loop", {});
  {
    auto fb = pb.define(main_id, {});
    fb.tail_call(Atom::fun_ref(loop_id), {});
  }
  {
    auto fb = pb.define(loop_id, {});
    fb.tail_call(Atom::fun_ref(loop_id), {});
  }
  vm::ProcessConfig cfg;
  cfg.max_instructions = 10'000;
  vm::Process p(pb.take("main"), cfg);
  EXPECT_THROW((void)p.run(), Error);
  EXPECT_GE(p.vm().stats().instructions, 10'000u);
}

TEST(VmStats, CountsCallsAndInstructions) {
  ProgramBuilder pb("stats");
  auto main_id = pb.declare("main", {});
  auto f_id = pb.declare("f", {Type::integer()});
  {
    auto fb = pb.define(main_id, {});
    fb.tail_call(Atom::fun_ref(f_id), {Atom::integer(3)});
  }
  {
    auto fb = pb.define(f_id, {"x"});
    fb.halt(fb.arg(0));
  }
  vm::Process p(pb.take("main"));
  EXPECT_EQ(p.run().exit_code, 3);
  EXPECT_EQ(p.vm().stats().calls, 2u);  // main, f
  EXPECT_GT(p.vm().stats().instructions, 0u);
}

/// Deterministic GC pressure: a program that allocates heavily in a loop
/// must run identically with a tiny nursery (forcing many collections).
TEST(VmGc, AllocationHeavyProgramSurvivesTinyNursery) {
  ProgramBuilder pb("alloc_heavy");
  auto main_id = pb.declare("main", {});
  auto loop_id =
      pb.declare("loop", {Type::integer(), Type::integer(), Type::ptr()});
  {
    auto fb = pb.define(main_id, {});
    auto keep = fb.let_alloc("keep", Atom::integer(1), Atom::integer(0));
    fb.tail_call(Atom::fun_ref(loop_id),
                 {Atom::integer(0), Atom::integer(0), fb.v(keep)});
  }
  {
    auto fb = pb.define(loop_id, {"i", "acc", "keep"});
    auto done =
        fb.let_binop("done", Binop::kGe, fb.arg(0), Atom::integer(2000));
    fb.branch(
        fb.v(done),
        [&](auto& t) {
          auto k =
              t.let_read("k", Type::integer(), t.arg(2), Atom::integer(0));
          auto sum = t.let_binop("sum", Binop::kAdd, t.arg(1), t.v(k));
          t.halt(t.v(sum));
        },
        [&](auto& e) {
          // Fresh garbage block every iteration; occasionally update keep.
          auto tmp = e.let_alloc("tmp", Atom::integer(32), e.arg(0));
          auto x =
              e.let_read("x", Type::integer(), e.v(tmp), Atom::integer(5));
          e.write(e.arg(2), Atom::integer(0), e.v(x));
          auto i1 = e.let_binop("i1", Binop::kAdd, e.arg(0), Atom::integer(1));
          auto a1 = e.let_binop("a1", Binop::kAdd, e.arg(1), e.v(x));
          e.tail_call(Atom::fun_ref(loop_id), {e.v(i1), e.v(a1), e.arg(2)});
        });
  }
  vm::ProcessConfig cfg;
  cfg.heap.young_capacity = 8 * 1024;  // force frequent minor collections
  vm::Process p(pb.take("main"), cfg);
  // acc = sum of i for i in 0..1999  (tmp[5] == i), plus keep == 1999.
  EXPECT_EQ(p.run().exit_code, 1999 * 2000 / 2 + 1999);
  EXPECT_GT(p.heap().stats().gc.minor_collections, 10u);
}

}  // namespace
