// Transport-layer tests: connect/recv deadlines, error paths that must not
// leak fds, frame-size hardening, the retry policy's budget accounting,
// the SimNetwork fault matrix, and the ChaosProxy fault shim.
#include <gtest/gtest.h>

#include <dirent.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <thread>
#include <vector>

#include "net/chaos.hpp"
#include "net/retry.hpp"
#include "net/sim.hpp"
#include "net/tcp.hpp"
#include "support/error.hpp"
#include "support/stopwatch.hpp"

namespace {

using namespace mojave;
using net::ChaosProxy;
using net::Deadlines;
using net::FaultPlan;
using net::ProxyFaults;
using net::RecvStatus;
using net::RetryPolicy;
using net::SimConfig;
using net::SimNetwork;
using net::TcpListener;
using net::TcpStream;

std::vector<std::byte> bytes_of(std::string_view s) {
  const auto span = std::as_bytes(std::span(s.data(), s.size()));
  return {span.begin(), span.end()};
}

/// A port that nothing listens on: bind a listener, note its port, close.
std::uint16_t dead_port() {
  TcpListener probe(0);
  const std::uint16_t port = probe.port();
  probe.shutdown();
  return port;
}

std::size_t open_fd_count() {
  std::size_t n = 0;
  DIR* dir = ::opendir("/proc/self/fd");
  if (dir == nullptr) return 0;
  while (::readdir(dir) != nullptr) ++n;
  ::closedir(dir);
  return n;
}

/// Echoes every frame back, across any number of connections.
class EchoServer {
 public:
  EchoServer() : listener_(0) {
    thread_ = std::thread([this] {
      while (true) {
        auto s = listener_.accept();
        if (!s.has_value()) return;
        workers_.emplace_back([stream = std::move(*s)]() mutable {
          try {
            while (auto frame = stream.recv_frame()) {
              stream.send_frame(*frame);
            }
          } catch (const NetError&) {
            // connection cut by the test or the proxy
          }
        });
      }
    });
  }
  ~EchoServer() {
    listener_.shutdown();
    thread_.join();
    for (auto& w : workers_) w.join();
  }
  [[nodiscard]] std::uint16_t port() const { return listener_.port(); }

 private:
  TcpListener listener_;
  std::thread thread_;
  std::vector<std::thread> workers_;
};

// --- Deadlines and error paths ----------------------------------------

TEST(TcpDeadlines, ConnectRefusedThrowsNetError) {
  EXPECT_THROW((void)TcpStream::connect("127.0.0.1", dead_port(),
                                        Deadlines{1.0, 1.0}),
               NetError);
}

TEST(TcpDeadlines, RecvDeadlineSurfacesAsNetTimeout) {
  TcpListener listener(0);
  std::thread server([&] {
    auto s = listener.accept();  // accept, then never send anything
    std::this_thread::sleep_for(std::chrono::seconds(2));
  });
  TcpStream client =
      TcpStream::connect("127.0.0.1", listener.port(), Deadlines{1.0, 0.2});
  Stopwatch sw;
  EXPECT_THROW((void)client.recv_frame(), NetTimeout);
  EXPECT_LT(sw.seconds(), 1.5) << "deadline did not bound the recv";
  client.close();
  listener.shutdown();
  server.join();
}

TEST(TcpDeadlines, HostnameResolutionWorks) {
  EchoServer echo;
  TcpStream client =
      TcpStream::connect("localhost", echo.port(), Deadlines{5.0, 5.0});
  client.send_frame(bytes_of("hi"));
  const auto back = client.recv_frame();
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, bytes_of("hi"));
}

TEST(TcpDeadlines, UnknownHostThrowsNetError) {
  EXPECT_THROW((void)TcpStream::connect("no-such-host.mojave.invalid", 1,
                                        Deadlines{2.0, 1.0}),
               NetError);
}

TEST(TcpFraming, PeerCloseMidFrameIsNetError) {
  // Raw server: advertise a 100-byte frame, deliver nothing, hang up.
  const int lfd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(lfd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  ASSERT_EQ(::bind(lfd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
  ASSERT_EQ(::listen(lfd, 1), 0);
  socklen_t len = sizeof(addr);
  ASSERT_EQ(::getsockname(lfd, reinterpret_cast<sockaddr*>(&addr), &len), 0);
  const std::uint16_t port = ntohs(addr.sin_port);

  std::thread server([&] {
    const int cfd = ::accept(lfd, nullptr, nullptr);
    const std::uint32_t claim = 100;
    std::uint8_t header[4];
    std::memcpy(header, &claim, 4);  // little-endian, matching the framing
    (void)::send(cfd, header, sizeof(header), 0);
    ::close(cfd);
  });
  TcpStream client =
      TcpStream::connect("127.0.0.1", port, Deadlines{1.0, 1.0});
  EXPECT_THROW((void)client.recv_frame(), NetError);
  server.join();
  ::close(lfd);
}

TEST(TcpFraming, OversizedFrameIsRejectedBeforeAllocation) {
  const int lfd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(lfd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  ASSERT_EQ(::bind(lfd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
  ASSERT_EQ(::listen(lfd, 1), 0);
  socklen_t len = sizeof(addr);
  ASSERT_EQ(::getsockname(lfd, reinterpret_cast<sockaddr*>(&addr), &len), 0);
  const std::uint16_t port = ntohs(addr.sin_port);

  std::thread server([&] {
    const int cfd = ::accept(lfd, nullptr, nullptr);
    const std::uint32_t claim =
        static_cast<std::uint32_t>(net::kMaxFrameBytes) + 1;
    std::uint8_t header[4];
    std::memcpy(header, &claim, 4);
    (void)::send(cfd, header, sizeof(header), 0);
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    ::close(cfd);
  });
  TcpStream client =
      TcpStream::connect("127.0.0.1", port, Deadlines{1.0, 1.0});
  EXPECT_THROW((void)client.recv_frame(), NetError);
  server.join();
  ::close(lfd);
}

TEST(TcpFraming, FailedConnectsDoNotLeakFds) {
  const std::uint16_t port = dead_port();
  // Warm up whatever lazy state the first call initializes.
  for (int i = 0; i < 3; ++i) {
    EXPECT_THROW((void)TcpStream::connect("127.0.0.1", port, Deadlines{1.0, 0}),
                 NetError);
  }
  const std::size_t before = open_fd_count();
  for (int i = 0; i < 50; ++i) {
    EXPECT_THROW((void)TcpStream::connect("127.0.0.1", port, Deadlines{1.0, 0}),
                 NetError);
  }
  const std::size_t after = open_fd_count();
  EXPECT_LE(after, before + 2) << "connect error paths are leaking fds";
}

// --- Retry policy -------------------------------------------------------

TEST(RetryPolicyTest, BackoffStopsAtMaxAttempts) {
  RetryPolicy policy;
  policy.max_attempts = 3;
  policy.initial_backoff_seconds = 0.001;
  policy.max_backoff_seconds = 0.002;
  policy.overall_deadline_seconds = 0;  // attempts only
  net::Backoff backoff(policy, 42);
  EXPECT_TRUE(backoff.retry_after_failure());   // attempt 2 allowed
  EXPECT_TRUE(backoff.retry_after_failure());   // attempt 3 allowed
  EXPECT_FALSE(backoff.retry_after_failure());  // budget exhausted
  EXPECT_EQ(backoff.attempts(), 3u);
}

TEST(RetryPolicyTest, OverallDeadlineCutsAttemptsShort) {
  RetryPolicy policy;
  policy.max_attempts = 1000;
  policy.initial_backoff_seconds = 0.02;
  policy.backoff_multiplier = 1.0;
  policy.max_backoff_seconds = 0.02;
  policy.overall_deadline_seconds = 0.1;
  net::Backoff backoff(policy, 42);
  std::uint32_t granted = 0;
  while (backoff.retry_after_failure()) ++granted;
  EXPECT_GT(granted, 0u);
  EXPECT_LT(granted, 20u) << "deadline did not bound the retry loop";
}

TEST(RetryPolicyTest, EnvOverridesApply) {
  ::setenv("MOJAVE_MIGRATE_MAX_ATTEMPTS", "7", 1);
  ::setenv("MOJAVE_NET_CONNECT_TIMEOUT_S", "2.5", 1);
  const RetryPolicy p = RetryPolicy::from_env();
  EXPECT_EQ(p.max_attempts, 7u);
  EXPECT_DOUBLE_EQ(p.connect_timeout_seconds, 2.5);
  ::unsetenv("MOJAVE_MIGRATE_MAX_ATTEMPTS");
  ::unsetenv("MOJAVE_NET_CONNECT_TIMEOUT_S");
  const RetryPolicy d = RetryPolicy::from_env();
  EXPECT_EQ(d.max_attempts, RetryPolicy{}.max_attempts);
}

// --- SimNetwork fault matrix --------------------------------------------

TEST(SimFaults, DropIsSilentToSenderAndCounted) {
  SimConfig cfg;
  cfg.replay_logging = false;
  cfg.faults.all_links.drop = 1.0;
  SimNetwork nw(2, cfg);
  EXPECT_TRUE(nw.send(0, 1, 7, bytes_of("x")));  // lossy nets do not confess
  std::vector<std::byte> out;
  EXPECT_EQ(nw.recv(1, 0, 7, out, 0.02), RecvStatus::kTimeout);
  EXPECT_EQ(nw.stats().faults_dropped, 1u);
}

TEST(SimFaults, DuplicateDeliversTwice) {
  SimConfig cfg;
  cfg.replay_logging = false;
  cfg.faults.all_links.duplicate = 1.0;
  SimNetwork nw(2, cfg);
  ASSERT_TRUE(nw.send(0, 1, 7, bytes_of("x")));
  std::vector<std::byte> a, b;
  EXPECT_EQ(nw.recv(1, 0, 7, a, 0.1), RecvStatus::kOk);
  EXPECT_EQ(nw.recv(1, 0, 7, b, 0.1), RecvStatus::kOk);
  EXPECT_EQ(a, b);
  EXPECT_EQ(nw.stats().faults_duplicated, 1u);
}

TEST(SimFaults, CorruptFlipsExactlyOneByteOfDeliveredCopy) {
  SimConfig cfg;
  cfg.replay_logging = false;
  cfg.faults.all_links.corrupt = 1.0;
  SimNetwork nw(2, cfg);
  const auto sent = bytes_of("hello world");
  ASSERT_TRUE(nw.send(0, 1, 7, sent));
  std::vector<std::byte> got;
  ASSERT_EQ(nw.recv(1, 0, 7, got, 0.1), RecvStatus::kOk);
  ASSERT_EQ(got.size(), sent.size());
  std::size_t flipped = 0;
  for (std::size_t i = 0; i < got.size(); ++i) {
    if (got[i] != sent[i]) ++flipped;
  }
  EXPECT_EQ(flipped, 1u);
  EXPECT_EQ(nw.stats().faults_corrupted, 1u);
}

TEST(SimFaults, CorruptionNeverReachesTheReplayLog) {
  SimConfig cfg;
  cfg.replay_logging = true;
  cfg.faults.all_links.corrupt = 1.0;
  SimNetwork nw(2, cfg);
  const auto sent = bytes_of("precious payload");
  ASSERT_TRUE(nw.send(0, 1, 7, sent));
  std::vector<std::byte> got;
  ASSERT_EQ(nw.recv(1, 0, 7, got, 0.1), RecvStatus::kOk);
  EXPECT_NE(got, sent);  // the in-flight copy was mangled
  // The queue is drained, so the next recv consults the replay log — which
  // must hold the clean bytes (a receiver that discards a corrupt frame
  // recovers the original this way).
  std::vector<std::byte> replay;
  ASSERT_EQ(nw.recv(1, 0, 7, replay, 0.1), RecvStatus::kOk);
  EXPECT_EQ(replay, sent);
}

TEST(SimFaults, ReorderDefersBehindLaterTraffic) {
  SimConfig cfg;
  cfg.replay_logging = false;
  cfg.faults.links[{0, 1}] = {.reorder = 1.0};
  SimNetwork nw(2, cfg);
  ASSERT_TRUE(nw.send(0, 1, 7, bytes_of("first")));   // deferred
  std::vector<std::byte> out;
  // The receiver asking for the deferred message forces its late arrival.
  ASSERT_EQ(nw.recv(1, 0, 7, out, 0.1), RecvStatus::kOk);
  EXPECT_EQ(out, bytes_of("first"));
  EXPECT_EQ(nw.stats().faults_reordered, 1u);
}

TEST(SimFaults, PartitionIsOneWayAndHealable) {
  SimConfig scfg;
  scfg.replay_logging = false;
  SimNetwork nw(2, scfg);
  nw.partition(0, 1);
  EXPECT_TRUE(nw.send(0, 1, 7, bytes_of("blocked")));
  std::vector<std::byte> out;
  EXPECT_EQ(nw.recv(1, 0, 7, out, 0.02), RecvStatus::kTimeout);
  // The reverse direction still flows.
  ASSERT_TRUE(nw.send(1, 0, 9, bytes_of("reverse")));
  ASSERT_EQ(nw.recv(0, 1, 9, out, 0.1), RecvStatus::kOk);
  EXPECT_EQ(nw.stats().faults_partitioned, 1u);
  nw.heal_partition(0, 1);
  ASSERT_TRUE(nw.send(0, 1, 7, bytes_of("flows")));
  ASSERT_EQ(nw.recv(1, 0, 7, out, 0.1), RecvStatus::kOk);
  EXPECT_EQ(out, bytes_of("flows"));
}

TEST(SimFaults, SameSeedSameSchedule) {
  const auto run = [](std::uint64_t seed) {
    SimConfig cfg;
    cfg.replay_logging = false;
    cfg.faults.seed = seed;
    cfg.faults.all_links.drop = 0.5;
    SimNetwork nw(2, cfg);
    std::vector<bool> delivered;
    for (int i = 0; i < 64; ++i) {
      (void)nw.send(0, 1, 7, bytes_of("m"));
      std::vector<std::byte> out;
      delivered.push_back(nw.recv(1, 0, 7, out, 0.001) == RecvStatus::kOk);
    }
    return delivered;
  };
  EXPECT_EQ(run(11), run(11));
  EXPECT_NE(run(11), run(12));  // astronomically unlikely to collide
}

// --- ChaosProxy ---------------------------------------------------------

TEST(ChaosProxyTest, CleanProxyRelaysBothDirections) {
  EchoServer echo;
  ChaosProxy proxy("127.0.0.1", echo.port(), ProxyFaults{});
  TcpStream client =
      TcpStream::connect("127.0.0.1", proxy.port(), Deadlines{2.0, 2.0});
  client.send_frame(bytes_of("ping"));
  const auto back = client.recv_frame();
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, bytes_of("ping"));
  client.close();
  EXPECT_GE(proxy.stats().frames_forwarded, 2u);
}

TEST(ChaosProxyTest, DeterministicReplyDropCutsTheConnection) {
  EchoServer echo;
  ProxyFaults faults;
  faults.drop_reply_frames = {1};  // swallow the first reply ever relayed
  ChaosProxy proxy("127.0.0.1", echo.port(), faults);
  {
    TcpStream client =
        TcpStream::connect("127.0.0.1", proxy.port(), Deadlines{2.0, 2.0});
    client.send_frame(bytes_of("lost"));
    // The reply is swallowed and the connection cut: recv sees either an
    // orderly close (nullopt) or a reset (NetError).
    try {
      const auto back = client.recv_frame();
      EXPECT_FALSE(back.has_value());
    } catch (const NetError&) {
    }
  }
  // A fresh connection works: only reply #1 was condemned.
  TcpStream retry =
      TcpStream::connect("127.0.0.1", proxy.port(), Deadlines{2.0, 2.0});
  retry.send_frame(bytes_of("again"));
  const auto back = retry.recv_frame();
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, bytes_of("again"));
  EXPECT_EQ(proxy.stats().replies_dropped, 1u);
}

// --- WireChaosProxy -----------------------------------------------------

TEST(WireChaosProxyTest, SplitWritesAndDelayPreserveEveryFrame) {
  EchoServer echo;
  net::WireFaults faults;
  faults.delay_seconds = 0.0005;
  faults.split_bytes = 7;  // frame headers arrive in pieces too
  net::WireChaosProxy proxy("127.0.0.1", echo.port(), faults);

  TcpStream client =
      TcpStream::connect("127.0.0.1", proxy.port(), Deadlines{2.0, 5.0});
  std::vector<std::byte> big(1024);
  for (std::size_t i = 0; i < big.size(); ++i) {
    big[i] = static_cast<std::byte>(i * 31 + 7);
  }
  for (int round = 0; round < 3; ++round) {
    client.send_frame(big);
    const auto back = client.recv_frame();
    ASSERT_TRUE(back.has_value()) << "round " << round;
    EXPECT_EQ(*back, big) << "round " << round;
  }
  client.close();

  const auto stats = proxy.stats();
  EXPECT_EQ(stats.connections, 1u);
  // 3 frames x (1024 + 4-byte header) x both directions, in <=7-byte
  // writes: far more writes than frames.
  EXPECT_GE(stats.bytes_forwarded, 2u * 3u * 1028u);
  EXPECT_GE(stats.split_writes, stats.bytes_forwarded / 7);
  EXPECT_EQ(stats.resets, 0u);
}

TEST(WireChaosProxyTest, MidFrameResetCutsOnlyTheCondemnedConnection) {
  EchoServer echo;
  net::WireFaults faults;
  faults.reset_conn = 1;
  faults.reset_after_bytes = 10;  // inside the first 1 KiB frame's payload
  net::WireChaosProxy proxy("127.0.0.1", echo.port(), faults);

  {
    TcpStream doomed =
        TcpStream::connect("127.0.0.1", proxy.port(), Deadlines{2.0, 2.0});
    const std::vector<std::byte> big(1024, std::byte{0x5a});
    // The send may already fail (RST can land before the local buffer
    // drains); if not, the echo reply never comes back.
    try {
      doomed.send_frame(big);
      const auto back = doomed.recv_frame();
      EXPECT_FALSE(back.has_value());
    } catch (const NetError&) {
    }
  }

  // Connection #2 is untouched: the relay still works end to end.
  TcpStream fresh =
      TcpStream::connect("127.0.0.1", proxy.port(), Deadlines{2.0, 2.0});
  fresh.send_frame(bytes_of("alive"));
  const auto back = fresh.recv_frame();
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, bytes_of("alive"));

  const auto stats = proxy.stats();
  EXPECT_EQ(stats.resets, 1u);
  EXPECT_EQ(stats.connections, 2u);
}

}  // namespace
