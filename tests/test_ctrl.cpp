// Control-plane durability tests (src/ctrl).
//
// The load-bearing property is replay equivalence: the live coordinator
// and WAL replay share one transition function (ctrl::CoordState::apply),
// so a standby that replays the log must arrive at a bit-identical state
// image. CtrlWal.ReplayRebuildsBitIdenticalState pins that as a property
// test over randomized transition streams; the rest of the suite pins the
// failure edges — torn tails, corrupt records, zombie appends behind a
// takeover seal — and the lease protocol that decides who may write.
#include <gtest/gtest.h>

#include <fcntl.h>
#include <unistd.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <random>
#include <string>
#include <vector>

#include "ctrl/lease.hpp"
#include "ctrl/state.hpp"
#include "ctrl/wal.hpp"

namespace {

namespace fs = std::filesystem;
using namespace mojave;

fs::path fresh_dir(const std::string& name) {
  const fs::path dir = fs::temp_directory_path() / name;
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

ctrl::WalRecord meta_record(std::uint32_t ranks) {
  ctrl::WalRecord rec;
  rec.op = ctrl::WalOp::kMeta;
  rec.num_ranks = ranks;
  rec.agents = {{"127.0.0.1", 7001}, {"127.0.0.1", 7002}};
  rec.max_instructions = 500000;
  rec.recv_timeout_seconds = 60.0;
  return rec;
}

ctrl::WalRecord placement_record(std::uint32_t rank, std::uint32_t agent,
                                 bool alive) {
  ctrl::WalRecord rec;
  rec.op = ctrl::WalOp::kPlacement;
  rec.rank = rank;
  rec.agent = agent;
  rec.alive = alive;
  return rec;
}

/// Apply the stream to a live CoordState while appending every record to
/// a WAL segment — exactly the coordinator's log-then-apply path.
std::vector<std::byte> run_live(const fs::path& dir, std::uint64_t epoch,
                                const std::vector<ctrl::WalRecord>& stream) {
  ctrl::CoordState live;
  ctrl::WalWriter wal(dir, epoch);
  for (const ctrl::WalRecord& rec : stream) {
    wal.append(rec);
    live.apply(rec);
  }
  wal.close();
  return live.snapshot_bytes();
}

std::vector<std::byte> replay_into_state(const fs::path& dir,
                                         ctrl::ReplayStats* stats = nullptr) {
  ctrl::CoordState rebuilt;
  const ctrl::ReplayStats st = ctrl::replay_wal(
      dir, [&rebuilt](const ctrl::WalRecord& rec) { rebuilt.apply(rec); });
  if (stats != nullptr) *stats = st;
  return rebuilt.snapshot_bytes();
}

/// A deterministic random transition stream touching every op the live
/// coordinator emits, including the order-sensitive ones (fences, dep
/// records, commits) whose interleavings the ring buffer must replay
/// exactly.
std::vector<ctrl::WalRecord> random_stream(std::uint32_t seed,
                                           std::uint32_t ranks,
                                           std::size_t ops) {
  std::mt19937 rng(seed);
  std::uniform_int_distribution<std::uint32_t> pick_rank(0, ranks - 1);
  std::uniform_int_distribution<int> pick_op(0, 9);

  std::vector<ctrl::WalRecord> stream;
  stream.push_back(meta_record(ranks));
  for (std::uint32_t r = 0; r < ranks; ++r) {
    stream.push_back(placement_record(r, r % 2, true));
  }
  for (std::size_t i = 0; i < ops; ++i) {
    ctrl::WalRecord rec;
    switch (pick_op(rng)) {
      case 0:
      case 1: {  // weighted toward the speculation join
        rec.op = ctrl::WalOp::kDepRecord;
        rec.sender = pick_rank(rng);
        do {
          rec.receiver = pick_rank(rng);
        } while (rec.receiver == rec.sender);
        rec.sender_level = 1 + (rng() % 3);
        rec.receiver_level = rng() % 3;
        rec.epoch = rng() % 5;
        rec.commit_seq = rng() % 4;
        break;
      }
      case 2: {
        rec.op = ctrl::WalOp::kRollback;
        rec.rank = pick_rank(rng);
        rec.level = 1 + (rng() % 2);
        rec.epoch = rng() % 5;
        break;
      }
      case 3: {
        rec.op = ctrl::WalOp::kCommit;
        rec.rank = pick_rank(rng);
        break;
      }
      case 4: {
        rec.op = ctrl::WalOp::kResurrectGrant;
        rec.rank = pick_rank(rng);
        rec.agent = rng() % 2;
        rec.commit_seq = rng() % 4;
        break;
      }
      case 5: {
        rec.op = ctrl::WalOp::kRankUp;
        rec.rank = pick_rank(rng);
        rec.agent = rng() % 2;
        break;
      }
      case 6: {
        rec.op = ctrl::WalOp::kCommitSeqSet;
        rec.rank = pick_rank(rng);
        rec.commit_seq = rng() % 8;
        break;
      }
      case 7: {
        rec.op = ctrl::WalOp::kAgentDown;
        rec.agent = rng() % 2;
        break;
      }
      case 8: {
        rec.op = ctrl::WalOp::kPlacement;
        rec.rank = pick_rank(rng);
        rec.agent = rng() % 2;
        rec.alive = (rng() % 2) == 0;
        break;
      }
      default: {
        rec.op = ctrl::WalOp::kRankResult;
        rec.rank = pick_rank(rng);
        rec.result_kind = 0;
        rec.exit_code = 0;
        rec.has_reported = true;
        rec.reported = static_cast<double>(rng() % 1000) / 7.0;
        rec.output = "rank output " + std::to_string(rec.rank);
        rec.instructions = rng() % 100000;
        rec.speculates = rng() % 10;
        rec.commits = rng() % 10;
        rec.rollbacks = rng() % 4;
        break;
      }
    }
    stream.push_back(rec);
  }
  return stream;
}

// --- Replay equivalence (the property the whole design hangs off) -------

TEST(CtrlWal, ReplayRebuildsBitIdenticalState) {
  for (std::uint32_t seed = 1; seed <= 8; ++seed) {
    const fs::path dir =
        fresh_dir("mojave_ctrl_equiv_" + std::to_string(seed));
    const auto stream = random_stream(seed, 4 + seed % 3, 200);
    const auto live = run_live(dir, /*epoch=*/1, stream);

    ctrl::ReplayStats stats;
    const auto rebuilt = replay_into_state(dir, &stats);
    EXPECT_EQ(stats.segments, 1u);
    EXPECT_EQ(stats.records, stream.size());
    EXPECT_EQ(stats.truncated, 0u);
    ASSERT_EQ(live, rebuilt) << "seed " << seed
                             << ": replayed state diverged from live state";
  }
}

TEST(CtrlWal, DuplicateResultIsIdempotentAcrossReplay) {
  const fs::path dir = fresh_dir("mojave_ctrl_dup_result");
  std::vector<ctrl::WalRecord> stream;
  stream.push_back(meta_record(2));
  ctrl::WalRecord res;
  res.op = ctrl::WalOp::kRankResult;
  res.rank = 0;
  res.has_reported = true;
  res.reported = 42.5;
  res.instructions = 100;
  stream.push_back(res);
  stream.push_back(res);  // re-sent across a failover

  ctrl::CoordState live;
  ctrl::WalWriter wal(dir, 1);
  for (const auto& rec : stream) {
    wal.append(rec);
    const auto r = live.apply(rec);
    if (&rec == &stream.back()) EXPECT_TRUE(r.duplicate_result);
  }
  wal.close();

  const auto rebuilt = replay_into_state(dir);
  EXPECT_EQ(live.snapshot_bytes(), rebuilt);
  EXPECT_EQ(live.ranks()[0].instructions, 100u) << "duplicate double-counted";
}

// --- Torn and corrupt tails ---------------------------------------------

TEST(CtrlWal, TornTailStopsAtLastWholeRecord) {
  const fs::path dir = fresh_dir("mojave_ctrl_torn");
  {
    ctrl::WalWriter wal(dir, 1);
    wal.append(meta_record(2));
    wal.append(placement_record(0, 0, true));
    wal.append(placement_record(1, 1, true));
    wal.close();
  }
  const auto segments = ctrl::wal_segments(dir);
  ASSERT_EQ(segments.size(), 1u);

  // Tear the tail mid-record, as a crash during the last write(2) would.
  const auto size = fs::file_size(segments[0]);
  fs::resize_file(segments[0], size - 5);

  ctrl::CoordState rebuilt;
  const auto stats = ctrl::replay_wal(
      dir, [&rebuilt](const ctrl::WalRecord& rec) { rebuilt.apply(rec); });
  EXPECT_EQ(stats.records, 2u) << "replay did not stop at the torn record";
  EXPECT_EQ(stats.truncated, 1u);
  ASSERT_EQ(rebuilt.placement().size(), 2u);
  EXPECT_TRUE(rebuilt.placement()[0].alive);
  EXPECT_FALSE(rebuilt.placement()[1].alive) << "torn record applied";
}

TEST(CtrlWal, CorruptRecordChecksumEndsSegmentReplay) {
  const fs::path dir = fresh_dir("mojave_ctrl_corrupt");
  {
    ctrl::WalWriter wal(dir, 1);
    wal.append(meta_record(2));
    wal.append(placement_record(0, 0, true));
    wal.close();
  }
  const auto segments = ctrl::wal_segments(dir);
  ASSERT_EQ(segments.size(), 1u);

  // Flip one byte in the last record's body: the length frame still
  // reads, the checksum must reject it.
  const auto size = static_cast<off_t>(fs::file_size(segments[0]));
  const int fd = ::open(segments[0].c_str(), O_RDWR);
  ASSERT_GE(fd, 0);
  char b = 0;
  ASSERT_EQ(::pread(fd, &b, 1, size - 2), 1);
  b = static_cast<char>(b ^ 0x5a);
  ASSERT_EQ(::pwrite(fd, &b, 1, size - 2), 1);
  ::close(fd);

  const auto stats = ctrl::replay_wal(dir, [](const ctrl::WalRecord&) {});
  EXPECT_EQ(stats.records, 1u);
  EXPECT_EQ(stats.truncated, 1u);
}

// --- Zombie fencing via takeover seals ----------------------------------

TEST(CtrlWal, TakeoverSealFencesZombiePrimaryAppends) {
  const fs::path dir = fresh_dir("mojave_ctrl_zombie");

  // Epoch 1 primary writes the run config, then "crashes" — but its
  // O_APPEND fd stays alive (the zombie scenario).
  auto zombie = std::make_unique<ctrl::WalWriter>(dir, 1);
  zombie->append(meta_record(2));
  zombie->append(placement_record(0, 0, true));
  zombie->flush();

  // Epoch 2 standby replays what the primary durably wrote and seals it.
  ctrl::CoordState standby;
  const auto replayed = ctrl::replay_wal(
      dir, [&standby](const ctrl::WalRecord& rec) { standby.apply(rec); });
  EXPECT_EQ(replayed.records, 2u);
  ASSERT_EQ(replayed.consumed.size(), 1u);

  ctrl::WalWriter takeover(dir, 2);
  ctrl::WalRecord seal;
  seal.op = ctrl::WalOp::kTakeover;
  seal.seals = replayed.consumed;
  takeover.append(seal);
  takeover.append(placement_record(1, 1, true));
  standby.apply(placement_record(1, 1, true));
  takeover.close();

  // The zombie wakes up and keeps appending to its old segment. Its
  // record lands on disk behind the epoch-2 segment in replay order —
  // only the seal can make it unreachable.
  zombie->append(placement_record(0, 1, false));
  zombie->close();
  zombie.reset();

  ctrl::ReplayStats stats;
  const auto rebuilt = replay_into_state(dir, &stats);
  EXPECT_EQ(stats.segments, 2u);
  EXPECT_EQ(stats.records, 3u) << "zombie append replayed past the seal";
  EXPECT_GT(stats.sealed_off, 0u);
  EXPECT_EQ(stats.max_epoch, 2u);
  EXPECT_EQ(rebuilt, standby.snapshot_bytes());
}

// --- Lease protocol ------------------------------------------------------

TEST(CtrlLease, AcquireRenewReleaseHandoff) {
  const fs::path dir = fresh_dir("mojave_ctrl_lease");

  ctrl::Lease primary(dir, /*ttl_seconds=*/30.0);
  ASSERT_TRUE(primary.try_acquire());
  EXPECT_TRUE(primary.held());
  EXPECT_EQ(primary.epoch(), 1u);
  EXPECT_TRUE(primary.renew());

  // A live, unexpired lease blocks contenders.
  ctrl::Lease standby(dir, 30.0);
  EXPECT_FALSE(standby.try_acquire());
  EXPECT_FALSE(standby.held());

  // Graceful release expires the lease in place: the standby takes over
  // immediately at the next epoch, and the old primary is now deposed.
  primary.release();
  const auto on_disk = ctrl::Lease::read(dir);
  ASSERT_TRUE(on_disk.has_value());
  EXPECT_TRUE(on_disk->expired(ctrl::Lease::wall_now()));

  ASSERT_TRUE(standby.try_acquire());
  EXPECT_EQ(standby.epoch(), 2u);
  EXPECT_FALSE(primary.try_acquire()) << "deposed primary re-took the lease";
}

TEST(CtrlLease, RenewFailsOnceDeposed) {
  const fs::path dir = fresh_dir("mojave_ctrl_lease_depose");

  ctrl::Lease primary(dir, /*ttl_seconds=*/0.0);  // expires immediately
  ASSERT_TRUE(primary.try_acquire());

  // TTL 0 means the standby sees an expired lease and seizes it — the
  // failure-detector path, not the graceful handoff.
  ctrl::Lease standby(dir, 30.0);
  ASSERT_TRUE(standby.try_acquire());
  EXPECT_EQ(standby.epoch(), 2u);

  EXPECT_FALSE(primary.renew()) << "zombie renewed over a newer epoch";
  EXPECT_FALSE(primary.held());
  // Its failed renew must not have clobbered the successor's lease.
  const auto info = ctrl::Lease::read(dir);
  ASSERT_TRUE(info.has_value());
  EXPECT_EQ(info->epoch, 2u);
  EXPECT_TRUE(standby.renew());
}

TEST(CtrlLease, ReadSurfacesEpochAndTtl) {
  const fs::path dir = fresh_dir("mojave_ctrl_lease_read");
  EXPECT_FALSE(ctrl::Lease::read(dir).has_value());

  ctrl::Lease lease(dir, 2.5);
  ASSERT_TRUE(lease.try_acquire());
  const auto info = ctrl::Lease::read(dir);
  ASSERT_TRUE(info.has_value());
  EXPECT_EQ(info->epoch, 1u);
  EXPECT_EQ(info->ttl_seconds, 2.5);
  EXPECT_FALSE(info->expired(ctrl::Lease::wall_now()));
}

}  // namespace
