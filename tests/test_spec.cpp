// Speculation manager tests: level discipline, copy-on-write semantics,
// commit folding (including out-of-order commits), rollback of multiple
// levels, allocation release, and a randomized property sweep comparing
// the heap against a shadow versioned model with interleaved collections.
#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "runtime/heap.hpp"
#include "spec/speculation.hpp"
#include "support/rng.hpp"

namespace {

using namespace mojave;
using runtime::Heap;
using runtime::HeapConfig;
using runtime::RootSet;
using runtime::Value;
using spec::SpeculationManager;

struct Fixture {
  Heap heap{HeapConfig{.young_capacity = 1u << 15}};
  SpeculationManager spec{heap};
  RootSet roots{heap};

  BlockIndex make(std::int64_t v) {
    const BlockIndex idx = heap.alloc_tagged(2, Value::from_int(v));
    roots.pin(Value::from_ptr(idx, 0));
    return idx;
  }
  std::int64_t get(BlockIndex idx) { return heap.read_slot(idx, 0).as_int(); }
  void set(BlockIndex idx, std::int64_t v) {
    heap.write_slot(idx, 0, Value::from_int(v));
  }
};

TEST(Spec, LevelNumberingAndValidation) {
  Fixture f;
  EXPECT_EQ(f.spec.current_level(), 0u);
  EXPECT_THROW(f.spec.commit(1), SpecError);
  EXPECT_THROW((void)f.spec.rollback(1, 0, false), SpecError);

  EXPECT_EQ(f.spec.speculate({}), 1u);
  EXPECT_EQ(f.spec.speculate({}), 2u);
  EXPECT_EQ(f.spec.current_level(), 2u);
  EXPECT_THROW(f.spec.commit(3), SpecError);
  EXPECT_THROW(f.spec.commit(0), SpecError);
}

TEST(Spec, WritesOutsideSpeculationAreNotVersioned) {
  Fixture f;
  const BlockIndex idx = f.make(1);
  f.set(idx, 2);
  EXPECT_EQ(f.heap.stats().cow_clones, 0u);
  EXPECT_EQ(f.spec.preserved_blocks(), 0u);
}

TEST(Spec, FirstWritePerLevelClonesOnceOnly) {
  Fixture f;
  const BlockIndex idx = f.make(1);
  (void)f.spec.speculate({});
  f.set(idx, 2);
  f.set(idx, 3);
  f.set(idx, 4);
  EXPECT_EQ(f.heap.stats().cow_clones, 1u);  // one clone per level, not per write
  EXPECT_EQ(f.spec.preserved_blocks(), 1u);
}

TEST(Spec, RollbackRestoresExactlyTheEntryState) {
  Fixture f;
  const BlockIndex a = f.make(10);
  const BlockIndex b = f.make(20);
  f.set(a, 11);  // pre-speculation mutation is permanent
  const SpecLevel level = f.spec.speculate({});
  f.set(a, 12);
  f.set(b, 22);
  (void)f.spec.rollback(level, -1, /*retry=*/false);
  EXPECT_EQ(f.get(a), 11);
  EXPECT_EQ(f.get(b), 20);
  EXPECT_EQ(f.spec.current_level(), 0u);
}

TEST(Spec, RollbackReleasesInLevelAllocations) {
  Fixture f;
  const SpecLevel level = f.spec.speculate({});
  const BlockIndex idx = f.heap.alloc_tagged(4);
  EXPECT_FALSE(f.heap.table().is_free(idx));
  (void)f.spec.rollback(level, 0, false);
  EXPECT_TRUE(f.heap.table().is_free(idx));
}

TEST(Spec, CommitKeepsInLevelAllocations) {
  Fixture f;
  const SpecLevel level = f.spec.speculate({});
  const BlockIndex idx = f.heap.alloc_tagged(4, Value::from_int(3));
  f.roots.pin(Value::from_ptr(idx, 0));
  f.spec.commit(level);
  EXPECT_EQ(f.get(idx), 3);
}

TEST(Spec, NestedRollbackRestoresOldestSavedVersion) {
  Fixture f;
  const BlockIndex idx = f.make(1);
  const SpecLevel l1 = f.spec.speculate({});
  f.set(idx, 2);
  (void)f.spec.speculate({});
  f.set(idx, 3);
  // Roll back both levels at once: the level-1 pre-state must win.
  (void)f.spec.rollback(l1, 0, false);
  EXPECT_EQ(f.get(idx), 1);
  EXPECT_EQ(f.spec.current_level(), 0u);
}

TEST(Spec, RollbackOfInnerLevelOnlyKeepsOuterChanges) {
  Fixture f;
  const BlockIndex idx = f.make(1);
  (void)f.spec.speculate({});
  f.set(idx, 2);
  const SpecLevel l2 = f.spec.speculate({});
  f.set(idx, 3);
  (void)f.spec.rollback(l2, 0, false);
  EXPECT_EQ(f.get(idx), 2);       // outer change survives
  EXPECT_EQ(f.spec.current_level(), 1u);
  (void)f.spec.rollback(1, 0, false);
  EXPECT_EQ(f.get(idx), 1);
}

TEST(Spec, CommitFoldsIntoParentSoParentRollbackUndoesBoth) {
  Fixture f;
  const BlockIndex idx = f.make(1);
  const SpecLevel l1 = f.spec.speculate({});
  f.set(idx, 2);
  const SpecLevel l2 = f.spec.speculate({});
  f.set(idx, 3);
  f.spec.commit(l2);  // fold into level 1
  EXPECT_EQ(f.get(idx), 3);
  (void)f.spec.rollback(l1, 0, false);
  // "rollback [l] reverts all changes made by in level l and all later
  // levels" — including the folded-in level-2 write.
  EXPECT_EQ(f.get(idx), 1);
}

TEST(Spec, OutOfOrderCommitOfMiddleLevel) {
  Fixture f;
  const BlockIndex a = f.make(1);
  const BlockIndex b = f.make(100);
  (void)f.spec.speculate({});   // level 1
  f.set(a, 2);
  (void)f.spec.speculate({});   // level 2
  f.set(b, 200);
  (void)f.spec.speculate({});   // level 3
  f.set(a, 3);

  // Commit level 2 out of order: levels renumber, 3 becomes 2.
  f.spec.commit(2);
  EXPECT_EQ(f.spec.current_level(), 2u);

  // Rolling back (new) level 2 undoes the a=3 write only.
  (void)f.spec.rollback(2, 0, false);
  EXPECT_EQ(f.get(a), 2);
  EXPECT_EQ(f.get(b), 200);  // folded level-2 write survives at level 1

  // Rolling back level 1 undoes everything.
  (void)f.spec.rollback(1, 0, false);
  EXPECT_EQ(f.get(a), 1);
  EXPECT_EQ(f.get(b), 100);
}

TEST(Spec, CommitToZeroMakesEffectsPermanent) {
  Fixture f;
  const BlockIndex idx = f.make(1);
  const SpecLevel level = f.spec.speculate({});
  f.set(idx, 2);
  f.spec.commit(level);
  EXPECT_EQ(f.spec.current_level(), 0u);
  EXPECT_EQ(f.get(idx), 2);
  EXPECT_EQ(f.spec.preserved_blocks(), 0u);  // records discharged
}

TEST(Spec, RetryReentersLevelWithContinuation) {
  Fixture f;
  spec::SavedContinuation cont;
  cont.fun = 3;
  cont.args = {Value::from_int(55)};
  const SpecLevel level = f.spec.speculate(cont);
  const auto outcome = f.spec.rollback(level, -9, /*retry=*/true);
  EXPECT_EQ(outcome.reentered_level, 1u);
  EXPECT_EQ(outcome.continuation.fun, 3u);
  EXPECT_EQ(outcome.continuation.c, -9);
  ASSERT_EQ(outcome.continuation.args.size(), 1u);
  EXPECT_EQ(outcome.continuation.args[0].as_int(), 55);
  EXPECT_EQ(f.spec.current_level(), 1u);  // automatically re-entered
}

TEST(Spec, ObserversFire) {
  Fixture f;
  int rollbacks = 0;
  int commits_to_zero = 0;
  f.spec.set_rollback_observer([&](SpecLevel, bool) { ++rollbacks; });
  f.spec.set_commit_observer([&] { ++commits_to_zero; });

  const SpecLevel l1 = f.spec.speculate({});
  const SpecLevel l2 = f.spec.speculate({});
  f.spec.commit(l2);             // fold: not a commit to zero
  EXPECT_EQ(commits_to_zero, 0);
  f.spec.commit(l1);
  EXPECT_EQ(commits_to_zero, 1);

  (void)f.spec.speculate({});
  (void)f.spec.rollback(1, 0, false);
  EXPECT_EQ(rollbacks, 1);
}

TEST(Spec, RawBlocksAreVersionedToo) {
  Fixture f;
  const BlockIndex raw = f.heap.alloc_raw(16);
  f.roots.pin(Value::from_ptr(raw, 0));
  f.heap.raw_store(raw, 0, 8, 1111);
  const SpecLevel level = f.spec.speculate({});
  f.heap.raw_store(raw, 0, 8, 2222);
  EXPECT_EQ(f.heap.raw_load(raw, 0, 8), 2222);
  (void)f.spec.rollback(level, 0, false);
  EXPECT_EQ(f.heap.raw_load(raw, 0, 8), 1111);
}

// --- Property sweep: shadow versioned model ---------------------------------

/// The shadow model keeps a stack of snapshots: entering a level pushes a
/// copy of the state; commit(l) drops snapshot l; rollback(l) restores
/// snapshot l. The heap must agree with the model after every operation
/// sequence, including interleaved minor/major collections.
class SpecProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SpecProperty, HeapAgreesWithShadowModel) {
  Heap heap(HeapConfig{.young_capacity = 1u << 15});
  SpeculationManager spec(heap);
  RootSet roots(heap);
  Rng rng(GetParam());

  using State = std::map<BlockIndex, std::int64_t>;
  State state;                       // current (speculative) contents
  std::vector<State> snapshots;      // snapshot at each level entry
  std::vector<BlockIndex> blocks;

  const auto check = [&] {
    for (const auto& [idx, v] : state) {
      ASSERT_EQ(heap.read_slot(idx, 0).as_int(), v) << "idx=" << idx;
    }
  };

  for (int round = 0; round < 600; ++round) {
    const double dice = rng.uniform();
    if (dice < 0.25 || blocks.empty()) {
      const BlockIndex idx = heap.alloc_tagged(1, Value::from_int(0));
      roots.pin(Value::from_ptr(idx, 0));
      blocks.push_back(idx);
      state[idx] = 0;
    } else if (dice < 0.60) {
      const BlockIndex idx = blocks[rng.below(blocks.size())];
      if (heap.table().is_free(idx)) continue;  // released by a rollback
      const auto v = static_cast<std::int64_t>(rng.next() & 0xffff);
      heap.write_slot(idx, 0, Value::from_int(v));
      state[idx] = v;
    } else if (dice < 0.75) {
      (void)spec.speculate({});
      snapshots.push_back(state);
    } else if (dice < 0.85) {
      if (spec.current_level() == 0) continue;
      const auto level = static_cast<SpecLevel>(
          1 + rng.below(spec.current_level()));
      spec.commit(level);
      snapshots.erase(snapshots.begin() + (level - 1));
    } else if (dice < 0.93) {
      if (spec.current_level() == 0) continue;
      const auto level = static_cast<SpecLevel>(
          1 + rng.below(spec.current_level()));
      (void)spec.rollback(level, 0, /*retry=*/false);
      state = snapshots[level - 1];
      snapshots.resize(level - 1);
      // Blocks allocated after the snapshot were released: purge them from
      // the model (their indices may be recycled later).
      for (auto it = state.begin(); it != state.end();) {
        if (heap.table().is_free(it->first)) {
          it = state.erase(it);
        } else {
          ++it;
        }
      }
    } else if (dice < 0.97) {
      heap.collect(false);
    } else {
      heap.collect(true);
    }
    if (round % 16 == 0) check();
  }

  // Wind down: commit everything, verify, collect, verify again.
  while (spec.current_level() > 0) {
    spec.commit(spec.current_level());
    snapshots.pop_back();
  }
  check();
  heap.collect(true);
  check();
}

INSTANTIATE_TEST_SUITE_P(Seeds, SpecProperty,
                         ::testing::Values(11, 22, 33, 44, 55, 66, 77, 88));

TEST(SpecObs, RollbackRecordsMetricsAndSpans) {
  auto& reg = obs::MetricsRegistry::instance();
  auto& tracer = obs::Tracer::instance();
  tracer.enable(256);

  auto counter_of = [](const obs::RegistrySnapshot& s, const char* name) {
    const auto it = s.counters.find(name);
    return it == s.counters.end() ? std::uint64_t{0} : it->second;
  };
  const auto before = reg.snapshot();

  Fixture f;
  const BlockIndex a = f.make(1);
  const SpecLevel level = f.spec.speculate({});
  f.set(a, 2);  // first write: clone preserved for rollback
  (void)f.spec.rollback(level, 0, /*retry=*/false);
  EXPECT_EQ(f.get(a), 1);

  const auto after = reg.snapshot();
  EXPECT_EQ(counter_of(after, "spec.speculates"),
            counter_of(before, "spec.speculates") + 1);
  EXPECT_EQ(counter_of(after, "spec.rollbacks"),
            counter_of(before, "spec.rollbacks") + 1);
  EXPECT_GE(counter_of(after, "spec.blocks_preserved"),
            counter_of(before, "spec.blocks_preserved") + 1);
  EXPECT_EQ(after.gauges.at("spec.active_levels"), 0);

  const std::string json = tracer.dump_chrome_json();
  EXPECT_NE(json.find("\"cat\":\"spec\""), std::string::npos);
  EXPECT_NE(json.find("\"speculate\""), std::string::npos);
  EXPECT_NE(json.find("\"abort\""), std::string::npos);  // non-retry rollback
  tracer.disable();
}

}  // namespace
