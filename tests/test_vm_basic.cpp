// End-to-end sanity tests for the builder → typecheck → lower → interpret
// pipeline, including the speculation primitives at the FIR level.
#include <gtest/gtest.h>

#include <sstream>

#include "fir/builder.hpp"
#include "fir/printer.hpp"
#include "fir/serialize.hpp"
#include "fir/typecheck.hpp"
#include "vm/process.hpp"

namespace {

using namespace mojave;
using fir::Atom;
using fir::Binop;
using fir::ProgramBuilder;
using fir::Type;
using runtime::Value;

TEST(VmBasic, HaltWithCode) {
  ProgramBuilder pb("halt");
  auto main_id = pb.declare("main", {});
  {
    auto fb = pb.define(main_id, {});
    fb.halt(Atom::integer(42));
  }
  vm::Process p(pb.take("main"));
  const auto result = p.run();
  EXPECT_EQ(result.kind, vm::RunResult::Kind::kHalted);
  EXPECT_EQ(result.exit_code, 42);
}

TEST(VmBasic, LoopViaRecursion) {
  // sum 1..10 with a CPS loop: loop(i, acc) = i > 10 ? halt acc : loop(i+1, acc+i)
  ProgramBuilder pb("sum");
  auto main_id = pb.declare("main", {});
  auto loop_id = pb.declare("loop", {Type::integer(), Type::integer()});
  {
    auto fb = pb.define(main_id, {});
    fb.tail_call(Atom::fun_ref(loop_id), {Atom::integer(1), Atom::integer(0)});
  }
  {
    auto fb = pb.define(loop_id, {"i", "acc"});
    auto done = fb.let_binop("done", Binop::kGt, fb.arg(0), Atom::integer(10));
    fb.branch(
        fb.v(done), [&](auto& t) { t.halt(t.arg(1)); },
        [&](auto& e) {
          auto i1 = e.let_binop("i1", Binop::kAdd, e.arg(0), Atom::integer(1));
          auto a1 = e.let_binop("a1", Binop::kAdd, e.arg(1), e.arg(0));
          e.tail_call(Atom::fun_ref(loop_id), {e.v(i1), e.v(a1)});
        });
  }
  vm::Process p(pb.take("main"));
  EXPECT_EQ(p.run().exit_code, 55);
}

TEST(VmBasic, HeapReadWrite) {
  ProgramBuilder pb("heap");
  auto main_id = pb.declare("main", {});
  {
    auto fb = pb.define(main_id, {});
    auto buf = fb.let_alloc("buf", Atom::integer(4), Atom::integer(0));
    fb.write(fb.v(buf), Atom::integer(2), Atom::integer(99));
    auto x = fb.let_read("x", Type::integer(), fb.v(buf), Atom::integer(2));
    fb.halt(fb.v(x));
  }
  vm::Process p(pb.take("main"));
  EXPECT_EQ(p.run().exit_code, 99);
}

TEST(VmBasic, RawBlockLittleEndian) {
  ProgramBuilder pb("raw");
  auto main_id = pb.declare("main", {});
  {
    auto fb = pb.define(main_id, {});
    auto buf = fb.let_alloc_raw("buf", Atom::integer(16));
    fb.raw_store(4, fb.v(buf), Atom::integer(0), Atom::integer(0x01020304));
    // Little-endian: byte 0 must be 0x04.
    auto b0 = fb.let_raw_load("b0", 1, fb.v(buf), Atom::integer(0));
    fb.halt(fb.v(b0));
  }
  vm::Process p(pb.take("main"));
  EXPECT_EQ(p.run().exit_code, 0x04);
}

TEST(VmBasic, OutOfBoundsReadIsSafetyError) {
  ProgramBuilder pb("oob");
  auto main_id = pb.declare("main", {});
  {
    auto fb = pb.define(main_id, {});
    auto buf = fb.let_alloc("buf", Atom::integer(2), Atom::integer(0));
    auto x = fb.let_read("x", Type::integer(), fb.v(buf), Atom::integer(5));
    fb.halt(fb.v(x));
  }
  vm::Process p(pb.take("main"));
  EXPECT_THROW(p.run(), SafetyError);
}

TEST(VmBasic, SpeculateCommitKeepsWrites) {
  // main: buf = alloc; speculate body(c, buf)
  // body(c, buf): buf[0] = 7; commit [c] done(buf)
  // done(buf): halt buf[0]
  ProgramBuilder pb("spec_commit");
  auto main_id = pb.declare("main", {});
  auto body_id = pb.declare("body", {Type::integer(), Type::ptr()});
  auto done_id = pb.declare("done", {Type::ptr()});
  {
    auto fb = pb.define(main_id, {});
    auto buf = fb.let_alloc("buf", Atom::integer(1), Atom::integer(0));
    fb.speculate(Atom::fun_ref(body_id), {fb.v(buf)});
  }
  {
    auto fb = pb.define(body_id, {"c", "buf"});
    fb.write(fb.arg(1), Atom::integer(0), Atom::integer(7));
    fb.commit(fb.arg(0), Atom::fun_ref(done_id), {fb.arg(1)});
  }
  {
    auto fb = pb.define(done_id, {"buf"});
    auto x = fb.let_read("x", Type::integer(), fb.arg(0), Atom::integer(0));
    fb.halt(fb.v(x));
  }
  vm::Process p(pb.take("main"));
  EXPECT_EQ(p.run().exit_code, 7);
}

TEST(VmBasic, AbortRestoresHeapAndReportsZeroC) {
  // body(c, buf): if c > 0 { buf[0] = 7; abort [c, 0] } else halt buf[0]
  // After abort, re-entry has c == 0 and buf[0] must be back to its initial 3.
  ProgramBuilder pb("spec_abort");
  auto main_id = pb.declare("main", {});
  auto body_id = pb.declare("body", {Type::integer(), Type::ptr()});
  {
    auto fb = pb.define(main_id, {});
    auto buf = fb.let_alloc("buf", Atom::integer(1), Atom::integer(3));
    fb.speculate(Atom::fun_ref(body_id), {fb.v(buf)});
  }
  {
    auto fb = pb.define(body_id, {"c", "buf"});
    auto live = fb.let_binop("live", Binop::kGt, fb.arg(0), Atom::integer(0));
    fb.branch(
        fb.v(live),
        [&](auto& t) {
          t.write(t.arg(1), Atom::integer(0), Atom::integer(7));
          t.abort_spec(t.arg(0), Atom::integer(0));
        },
        [&](auto& e) {
          auto x =
              e.let_read("x", Type::integer(), e.arg(1), Atom::integer(0));
          e.halt(e.v(x));
        });
  }
  vm::Process p(pb.take("main"));
  EXPECT_EQ(p.run().exit_code, 3);
}

TEST(VmBasic, RollbackRetriesWithNewC) {
  // Retry semantics: rollback re-enters the level; second pass must see the
  // restored value and a changed c, then commit.
  ProgramBuilder pb("spec_retry");
  auto main_id = pb.declare("main", {});
  auto body_id = pb.declare("body", {Type::integer(), Type::ptr()});
  auto done_id = pb.declare("done", {Type::ptr()});
  {
    auto fb = pb.define(main_id, {});
    auto buf = fb.let_alloc("buf", Atom::integer(1), Atom::integer(10));
    fb.speculate(Atom::fun_ref(body_id), {fb.v(buf)});
  }
  {
    auto fb = pb.define(body_id, {"c", "buf"});
    // c > 0 means first entry (c == level id); retry passes c = -5.
    auto first = fb.let_binop("first", Binop::kGt, fb.arg(0), Atom::integer(0));
    fb.branch(
        fb.v(first),
        [&](auto& t) {
          t.write(t.arg(1), Atom::integer(0), Atom::integer(77));
          t.rollback(t.arg(0), Atom::integer(-5));
        },
        [&](auto& e) {
          // Value restored (10), c changed to -5, and we are inside the
          // automatically re-entered level — commit it and finish.
          auto lvl = e.let_external("lvl", Type::integer(), "spec_level", {});
          e.commit(e.v(lvl), Atom::fun_ref(done_id), {e.arg(1)});
        });
  }
  {
    auto fb = pb.define(done_id, {"buf"});
    auto x = fb.let_read("x", Type::integer(), fb.arg(0), Atom::integer(0));
    fb.halt(fb.v(x));
  }
  vm::Process p(pb.take("main"));
  EXPECT_EQ(p.run().exit_code, 10);
}

TEST(VmBasic, ExternalPrint) {
  ProgramBuilder pb("hello");
  auto main_id = pb.declare("main", {});
  {
    auto fb = pb.define(main_id, {});
    auto u = fb.let_external("u", Type::unit(), "print_string",
                             {pb.str("hello, mojave\n")});
    (void)u;
    fb.halt(Atom::integer(0));
  }
  std::ostringstream out;
  vm::ProcessConfig cfg;
  cfg.output = &out;
  vm::Process p(pb.take("main"), cfg);
  EXPECT_EQ(p.run().exit_code, 0);
  EXPECT_EQ(out.str(), "hello, mojave\n");
}

TEST(VmBasic, SerializationRoundTripPreservesBehaviour) {
  ProgramBuilder pb("roundtrip");
  auto main_id = pb.declare("main", {});
  auto loop_id = pb.declare("loop", {Type::integer(), Type::integer()});
  {
    auto fb = pb.define(main_id, {});
    fb.tail_call(Atom::fun_ref(loop_id), {Atom::integer(0), Atom::integer(1)});
  }
  {
    auto fb = pb.define(loop_id, {"i", "acc"});
    auto done = fb.let_binop("done", Binop::kGe, fb.arg(0), Atom::integer(6));
    fb.branch(
        fb.v(done), [&](auto& t) { t.halt(t.arg(1)); },
        [&](auto& e) {
          auto i1 = e.let_binop("i1", Binop::kAdd, e.arg(0), Atom::integer(1));
          auto a1 = e.let_binop("a1", Binop::kMul, e.arg(1), Atom::integer(2));
          e.tail_call(Atom::fun_ref(loop_id), {e.v(i1), e.v(a1)});
        });
  }
  fir::Program original = pb.take("main");
  const auto bytes = fir::encode_program(original);
  fir::Program decoded = fir::decode_program(bytes);
  EXPECT_EQ(fir::to_string(original), fir::to_string(decoded));

  vm::Process p(std::move(decoded));
  EXPECT_EQ(p.run().exit_code, 64);
}

/// A CPS loop big enough to be preempted many times: run to completion in
/// tiny slices and the answer, instruction count, and preemption count
/// must all line up with the unbounded run. This is the contract the
/// fiber scheduler stands on.
TEST(VmBasic, SlicedRunMatchesUnboundedRun) {
  const auto build = [] {
    ProgramBuilder pb("sum1k");
    auto main_id = pb.declare("main", {});
    auto loop_id = pb.declare("loop", {Type::integer(), Type::integer()});
    {
      auto fb = pb.define(main_id, {});
      fb.tail_call(Atom::fun_ref(loop_id),
                   {Atom::integer(1), Atom::integer(0)});
    }
    {
      auto fb = pb.define(loop_id, {"i", "acc"});
      auto done =
          fb.let_binop("done", Binop::kGt, fb.arg(0), Atom::integer(1000));
      fb.branch(
          fb.v(done), [&](auto& t) { t.halt(t.arg(1)); },
          [&](auto& e) {
            auto i1 =
                e.let_binop("i1", Binop::kAdd, e.arg(0), Atom::integer(1));
            auto a1 = e.let_binop("a1", Binop::kAdd, e.arg(1), e.arg(0));
            e.tail_call(Atom::fun_ref(loop_id), {e.v(i1), e.v(a1)});
          });
    }
    return pb.take("main");
  };

  vm::Process whole(build());
  const auto full = whole.run();
  ASSERT_EQ(full.kind, vm::RunResult::Kind::kHalted);
  EXPECT_EQ(full.exit_code, 1000 * 1001 / 2);
  const std::uint64_t full_insns = whole.vm().stats().instructions;

  vm::Process sliced(build());
  auto& vm = sliced.vm();
  vm.start(vm.compiled().entry, {});
  ASSERT_TRUE(vm.slice_active());
  int preemptions = 0;
  vm::SliceResult r;
  do {
    r = vm.run_slice(50);
    if (r.status == vm::SliceResult::Status::kPreempted) ++preemptions;
    ASSERT_NE(r.status, vm::SliceResult::Status::kBlocked);
    ASSERT_LT(preemptions, 100000) << "slice loop ran away";
  } while (r.status == vm::SliceResult::Status::kPreempted);
  ASSERT_EQ(r.status, vm::SliceResult::Status::kHalted);
  EXPECT_FALSE(vm.slice_active());
  EXPECT_EQ(r.exit_code, full.exit_code);
  EXPECT_EQ(vm.stats().instructions, full_insns)
      << "preemption must not retire extra instructions";
  EXPECT_GT(preemptions, 10) << "budget of 50 never preempted a ~1k-iter loop";
}

/// An external that blocks is re-executed on resume (WouldBlock un-retires
/// it), so a gated external must see every attempt while the program
/// observes exactly one successful call with the right result.
TEST(VmBasic, WouldBlockParksAndReExecutesExternal) {
  ProgramBuilder pb("blocky");
  auto main_id = pb.declare("main", {});
  {
    auto fb = pb.define(main_id, {});
    auto v = fb.let_external("v", Type::integer(), "gated_value", {});
    auto v2 = fb.let_binop("v2", Binop::kAdd, fb.v(v), Atom::integer(1));
    fb.halt(fb.v(v2));
  }
  vm::Process p(pb.take("main"));
  auto& vm = p.vm();
  int attempts = 0;
  vm.register_external(
      "gated_value", [&](vm::Interpreter&, std::span<const runtime::Value>) {
        if (++attempts < 3) throw vm::WouldBlock{123.5};
        return Value::from_int(41);
      });
  vm.start(vm.compiled().entry, {});
  auto r = vm.run_slice(0);
  ASSERT_EQ(r.status, vm::SliceResult::Status::kBlocked);
  EXPECT_DOUBLE_EQ(r.block_deadline, 123.5);
  EXPECT_TRUE(vm.slice_active());
  const std::uint64_t parked_insns = vm.stats().instructions;

  r = vm.run_slice(0);  // blocks again (attempt 2)
  ASSERT_EQ(r.status, vm::SliceResult::Status::kBlocked);
  EXPECT_EQ(vm.stats().instructions, parked_insns)
      << "a blocked external must be un-retired, not counted per retry";

  r = vm.run_slice(0);  // attempt 3 succeeds
  ASSERT_EQ(r.status, vm::SliceResult::Status::kHalted);
  EXPECT_EQ(r.exit_code, 42);
  EXPECT_EQ(attempts, 3);
}

}  // namespace
