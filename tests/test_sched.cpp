// RankScheduler tests (src/dnode/sched.*): the fiber layer that lets one
// event-loop thread host hundreds of ranks. The thousand-fiber cases are
// sized for the TSan job — cross-thread wake_key()/wake() against a loop
// thread driving run_some() is exactly the race surface the scheduler's
// wake inbox exists to close.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "dnode/sched.hpp"
#include "net/poller.hpp"

namespace {

using namespace mojave;
using dnode::RankScheduler;

using Step = RankScheduler::Step;

double now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

TEST(Sched, RoundRobinRunsEveryFiberToCompletion) {
  RankScheduler sched;
  constexpr int kFibers = 1500;
  constexpr int kSlices = 10;
  std::vector<int> progress(kFibers, 0);
  for (int i = 0; i < kFibers; ++i) {
    sched.spawn(static_cast<RankScheduler::FiberId>(i), [&, i](auto) {
      return ++progress[i] >= kSlices ? Step{Step::Kind::kDone}
                                      : Step{Step::Kind::kYield};
    });
  }
  EXPECT_EQ(sched.live(), static_cast<std::size_t>(kFibers));
  while (sched.has_runnable()) sched.run_some(256, now_seconds());
  EXPECT_EQ(sched.live(), 0u);
  for (int i = 0; i < kFibers; ++i) {
    EXPECT_EQ(progress[i], kSlices) << "fiber " << i;
  }
}

TEST(Sched, BlockedFiberWakesOnKeyNotBefore) {
  RankScheduler sched;
  int runs = 0;
  bool done = false;
  sched.spawn(7, [&](auto) {
    ++runs;
    if (runs == 1) return Step{Step::Kind::kBlocked, 0xabcull, 0};
    done = true;
    return Step{Step::Kind::kDone};
  });
  sched.run_some(16, now_seconds());
  EXPECT_EQ(runs, 1);
  // Parked: more scheduling does nothing.
  sched.run_some(16, now_seconds());
  EXPECT_EQ(runs, 1);
  EXPECT_TRUE(sched.idle());
  // The wrong key does not wake it; the right one does.
  sched.wake_key(0xdefull);
  sched.run_some(16, now_seconds());
  EXPECT_EQ(runs, 1);
  sched.wake_key(0xabcull);
  sched.run_some(16, now_seconds());
  EXPECT_EQ(runs, 2);
  EXPECT_TRUE(done);
  EXPECT_EQ(sched.live(), 0u);
}

TEST(Sched, DeadlineExpiryWakesWithoutEvent) {
  RankScheduler sched;
  const double start = now_seconds();
  int runs = 0;
  sched.spawn(1, [&](auto) {
    ++runs;
    if (runs == 1) {
      return Step{Step::Kind::kBlocked, 0x123ull, start + 0.02};
    }
    return Step{Step::Kind::kDone};
  });
  sched.run_some(4, start);
  EXPECT_EQ(runs, 1);
  EXPECT_NEAR(sched.next_deadline(), start + 0.02, 1e-9);
  // Before the deadline nothing moves; after it the fiber runs unwoken.
  sched.expire_deadlines(start + 0.01);
  sched.run_some(4, start + 0.01);
  EXPECT_EQ(runs, 1);
  sched.expire_deadlines(start + 0.05);
  sched.run_some(4, start + 0.05);
  EXPECT_EQ(runs, 2);
  EXPECT_EQ(sched.next_deadline(), 0.0);
}

TEST(Sched, RemoveDropsParkedFiber) {
  RankScheduler sched;
  sched.spawn(9, [](auto) { return Step{Step::Kind::kBlocked, 5ull, 0}; });
  sched.run_some(4, now_seconds());
  EXPECT_EQ(sched.live(), 1u);
  sched.remove(9);
  EXPECT_EQ(sched.live(), 0u);
  // A late wake for the removed fiber must be harmless.
  sched.wake_key(5ull);
  sched.wake(9);
  sched.run_some(4, now_seconds());
  EXPECT_EQ(sched.live(), 0u);
}

/// The TSan centrepiece: ≥1k fibers all parking on per-fiber keys while
/// four producer threads wake them concurrently through the thread-safe
/// inbox, with the loop thread in and out of poller waits the whole time.
TEST(Sched, ThousandFibersCrossThreadWakes) {
  net::Poller poller;
  RankScheduler sched(&poller);
  constexpr std::uint64_t kFibers = 1024;
  constexpr int kRounds = 8;

  std::vector<std::atomic<int>> rounds(kFibers);
  for (auto& r : rounds) r.store(0);
  for (std::uint64_t i = 0; i < kFibers; ++i) {
    sched.spawn(i, [&, i](auto) {
      const int r = rounds[i].fetch_add(1) + 1;
      if (r > kRounds) return Step{Step::Kind::kDone};
      // Park on this fiber's own key; a producer thread will wake it.
      // Belt-and-braces deadline so a lost wake fails the asserts below
      // rather than hanging the suite.
      return Step{Step::Kind::kBlocked, dnode::recv_wait_key(i, r),
                  now_seconds() + 30.0};
    });
  }

  std::atomic<bool> stop{false};
  std::vector<std::thread> producers;
  for (int t = 0; t < 4; ++t) {
    producers.emplace_back([&, t] {
      // Sweep the whole key space over and over until every fiber is
      // done: a fiber may park on a key *after* a sweep passed it, so a
      // single pass per round would strand it. Redundant wakes on empty
      // keys are part of the contract under test.
      while (!stop.load()) {
        for (int round = 1; round <= kRounds; ++round) {
          for (std::uint64_t i = static_cast<std::uint64_t>(t); i < kFibers;
               i += 4) {
            sched.wake_key(dnode::recv_wait_key(i, round));
            if ((i & 0x3f) == 0) sched.wake(i);
          }
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
    });
  }

  std::vector<net::Poller::Event> events;
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(60);
  while (sched.live() > 0 && std::chrono::steady_clock::now() < deadline) {
    sched.run_some(512, now_seconds());
    if (!sched.has_runnable() && sched.live() > 0) {
      poller.wait(events, 20);  // a cross-thread wake kicks us out early
      sched.expire_deadlines(now_seconds());
    }
  }
  stop.store(true);
  for (auto& p : producers) p.join();

  EXPECT_EQ(sched.live(), 0u) << "fibers stranded: lost wakes";
  for (std::uint64_t i = 0; i < kFibers; ++i) {
    EXPECT_EQ(rounds[i].load(), kRounds + 1) << "fiber " << i;
  }
}

/// A producer round mixes wake_key sweeps with wake_all from the loop
/// thread (the PLACEMENT-update path): every parked fiber must make
/// progress and none may run concurrently with itself.
TEST(Sched, WakeAllUnparksEveryFiber) {
  RankScheduler sched;
  constexpr std::uint64_t kFibers = 1000;
  std::vector<int> runs(kFibers, 0);
  for (std::uint64_t i = 0; i < kFibers; ++i) {
    sched.spawn(i, [&, i](auto) {
      if (++runs[i] == 1) {
        return Step{Step::Kind::kBlocked, dnode::rank_wait_key(i), 0};
      }
      return Step{Step::Kind::kDone};
    });
  }
  while (sched.has_runnable()) sched.run_some(256, now_seconds());
  EXPECT_EQ(sched.live(), kFibers) << "all parked";
  sched.wake_all();
  while (sched.has_runnable()) sched.run_some(256, now_seconds());
  EXPECT_EQ(sched.live(), 0u);
  for (std::uint64_t i = 0; i < kFibers; ++i) {
    EXPECT_EQ(runs[i], 2) << "fiber " << i;
  }
}

}  // namespace
