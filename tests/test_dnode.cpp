// Distributed node runtime tests (src/dnode).
//
// The DnodeE2E suite is the acceptance scenario of the distributed
// runtime: real `mojc node` OS processes on real TCP ports, an in-process
// Coordinator, the Figure-2 heat grid split across agents, an agent
// SIGKILLed mid-run (its ranks resurrect from the shared ckpt:// store on
// the survivor), a forced cross-agent speculation rollback — and the final
// sums still bit-match the sequential reference, exactly as the
// single-process cluster::Cluster tests demand of the simulated cluster.
//
// The DnodeCluster suite runs agents in-process (same code, no fork) so
// the TSan job exercises the agent/coordinator locking.
#include <gtest/gtest.h>

#include <csignal>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include <sys/wait.h>
#include <unistd.h>

#include "ckpt/store.hpp"
#include "cluster/cluster.hpp"
#include "ctrl/lease.hpp"
#include "dnode/agent.hpp"
#include "dnode/coord.hpp"
#include "gridapp/heat.hpp"
#include "net/chaos.hpp"

namespace {

namespace fs = std::filesystem;
using namespace mojave;

fs::path fresh_dir(const std::string& name) {
  const fs::path dir = fs::temp_directory_path() / name;
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

/// One `mojc node` child process. The ready line on its stdout carries
/// the port the agent actually bound (it asks the OS for a free one).
struct AgentProc {
  pid_t pid = -1;
  int out_fd = -1;
  std::uint16_t port = 0;

  void start(const fs::path& storage, double throttle_ms = 0) {
    int fds[2];
    ASSERT_EQ(::pipe(fds), 0);
    pid = ::fork();
    ASSERT_GE(pid, 0);
    if (pid == 0) {
      ::dup2(fds[1], STDOUT_FILENO);
      ::close(fds[0]);
      ::close(fds[1]);
      const std::string throttle = std::to_string(throttle_ms);
      ::execl(MOJC_BIN, "mojc", "node", "--storage", storage.c_str(),
              "--port", "0", "--throttle-ms", throttle.c_str(),
              static_cast<char*>(nullptr));
      ::_exit(127);  // exec failed
    }
    ::close(fds[1]);
    out_fd = fds[0];
    // Read "DNODE_READY port=N\n".
    std::string line;
    char c = 0;
    while (::read(out_fd, &c, 1) == 1 && c != '\n') line.push_back(c);
    const auto eq = line.rfind('=');
    ASSERT_NE(eq, std::string::npos) << "no ready line, got: " << line;
    port = static_cast<std::uint16_t>(std::stoi(line.substr(eq + 1)));
    ASSERT_GT(port, 0);
  }

  /// The failure under test: SIGKILL, as abrupt as a machine loss gets
  /// short of pulling cables. No flush, no goodbye frame.
  void kill_hard() {
    if (pid > 0) {
      ::kill(pid, SIGKILL);
      ::waitpid(pid, nullptr, 0);
      pid = -1;
    }
  }

  /// Graceful exit after the coordinator's SHUTDOWN frame.
  int reap() {
    int status = 0;
    if (pid > 0) {
      ::waitpid(pid, &status, 0);
      pid = -1;
    }
    return WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  }

  ~AgentProc() {
    if (pid > 0) {
      ::kill(pid, SIGKILL);
      ::waitpid(pid, nullptr, 0);
    }
    if (out_fd >= 0) ::close(out_fd);
  }
};

dnode::CoordinatorConfig coord_config(
    const std::vector<std::uint16_t>& ports, std::uint32_t ranks) {
  dnode::CoordinatorConfig cfg;
  for (const std::uint16_t p : ports) {
    cfg.agents.push_back({"127.0.0.1", p});
  }
  cfg.num_ranks = ranks;
  cfg.recv_timeout_seconds = 60.0;
  return cfg;
}

void expect_sums_match(const dnode::Coordinator& coord,
                       const gridapp::HeatConfig& cfg) {
  const auto ref = gridapp::heat_reference_sums(cfg);
  const auto results = coord.results();
  ASSERT_EQ(results.size(), cfg.nodes);
  for (const dnode::RankOutcome& r : results) {
    EXPECT_TRUE(r.done) << "rank " << r.rank;
    EXPECT_EQ(r.result_kind, 0) << "rank " << r.rank << ": " << r.error;
    ASSERT_TRUE(r.has_reported) << "rank " << r.rank << " never reported";
    EXPECT_NEAR(r.reported, ref[r.rank], 1e-9) << "rank " << r.rank;
  }
}

TEST(DnodeE2E, HeatAcrossTwoAgentsMatchesSingleProcessCluster) {
  const fs::path storage = fresh_dir("mojave_dnode_e2e_plain");

  gridapp::HeatConfig hcfg;
  hcfg.nodes = 4;
  hcfg.rows = 16;
  hcfg.cols = 12;
  hcfg.steps = 20;
  hcfg.checkpoint_interval = 0;

  AgentProc a0, a1;
  a0.start(storage);
  a1.start(storage);

  dnode::Coordinator coord(coord_config({a0.port, a1.port}, hcfg.nodes));
  coord.launch_spmd(gridapp::heat_program(hcfg));
  ASSERT_TRUE(coord.wait_all(120.0)) << "distributed run timed out";
  expect_sums_match(coord, hcfg);

  // Same program, single-process simulated cluster: identical answers.
  // (The reference sums pin both, but this is the equivalence the
  // distributed runtime promises: same primitives, same results.)
  cluster::ClusterConfig ccfg;
  ccfg.num_nodes = hcfg.nodes;
  const auto local = gridapp::run_heat(hcfg, ccfg);
  ASSERT_TRUE(local.all_clean);
  const auto dist = coord.results();
  for (std::uint32_t r = 0; r < hcfg.nodes; ++r) {
    EXPECT_NEAR(dist[r].reported, local.sums[r], 1e-9) << "rank " << r;
  }

  coord.shutdown_agents();
  EXPECT_EQ(a0.reap(), 0);
  EXPECT_EQ(a1.reap(), 0);
}

/// Acceptance under a hostile wire: every byte into agent 1 crosses a
/// WireChaosProxy that adds latency, fragments writes, and hard-resets
/// the first cross-agent data link mid-frame. The coordinator dials
/// agent 1 first (proxy connection #1, carrying hello/config/launch in
/// fragments); agent 0's data link to agent 1 is connection #2 and gets
/// the reset. Recovery is the replay path: the receiver re-requests the
/// lost message from the sender's replay log, the sender redials through
/// the proxy, and the run must still bit-match the reference sums.
TEST(DnodeE2E, HeatSurvivesDelaySplitWritesAndMidFrameReset) {
  const fs::path storage = fresh_dir("mojave_dnode_e2e_wirechaos");

  gridapp::HeatConfig hcfg;
  hcfg.nodes = 4;
  hcfg.rows = 16;
  hcfg.cols = 12;
  hcfg.steps = 20;
  hcfg.checkpoint_interval = 8;

  AgentProc a0, a1;
  a0.start(storage);
  a1.start(storage);

  net::WireFaults faults;
  faults.delay_seconds = 0.001;
  faults.split_bytes = 256;
  faults.reset_conn = 2;
  faults.reset_after_bytes = 1200;  // mid-run, mid-frame on the data link
  net::WireChaosProxy proxy("127.0.0.1", a1.port, faults);

  dnode::Coordinator coord(coord_config({a0.port, proxy.port()}, hcfg.nodes));
  coord.launch_spmd(gridapp::heat_program(hcfg));
  ASSERT_TRUE(coord.wait_all(120.0)) << "chaotic-wire run timed out";
  expect_sums_match(coord, hcfg);

  const auto stats = proxy.stats();
  EXPECT_GE(stats.connections, 2u);  // coordinator + agent 0's data link
  EXPECT_GT(stats.split_writes, 0u);
  EXPECT_EQ(stats.resets, 1u) << "the condemned connection never reset";

  coord.shutdown_agents();
  EXPECT_EQ(a0.reap(), 0);
  EXPECT_EQ(a1.reap(), 0);
}

TEST(DnodeE2E, AgentDeathResurrectsRanksAndPoisonCrossesAgents) {
  const fs::path storage = fresh_dir("mojave_dnode_e2e_kill");

  gridapp::HeatConfig hcfg;
  hcfg.nodes = 4;
  hcfg.rows = 16;
  hcfg.cols = 8;
  hcfg.steps = 48;
  hcfg.checkpoint_interval = 8;

  AgentProc a0, a1;
  a0.start(storage);
  a1.start(storage);

  dnode::Coordinator coord(coord_config({a0.port, a1.port}, hcfg.nodes));
  coord.launch_spmd(gridapp::heat_program(hcfg));

  // Force one cross-agent rollback early: rank 2 (agent 0) reports
  // MSG_ROLL at its next receive, rolls back, and its ROLL_POISON must
  // avalanche over TCP to dependents on the other agent.
  coord.force_rollback(2);

  // Round-robin placement put ranks 1 and 3 on agent 1. Resurrection can
  // only restore what was checkpointed, so wait for both of the victim's
  // ranks to reach the shared store before pulling the plug.
  const auto store = ckpt::CheckpointStore::open_shared(storage);
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(60);
  while ((!store->has_snapshot("rank_1") || !store->has_snapshot("rank_3")) &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  ASSERT_TRUE(store->has_snapshot("rank_1")) << "rank 1 never checkpointed";
  ASSERT_TRUE(store->has_snapshot("rank_3")) << "rank 3 never checkpointed";

  a1.kill_hard();

  ASSERT_TRUE(coord.wait_all(120.0)) << "run did not recover from the kill";
  expect_sums_match(coord, hcfg);

  // Both of the dead agent's ranks came back on the survivor...
  EXPECT_GE(coord.resurrections(), 2u);
  EXPECT_EQ(coord.agent_of(1), 0u);
  EXPECT_EQ(coord.agent_of(3), 0u);
  EXPECT_FALSE(coord.agent_alive(1));
  // ...the forced rollback poisoned at least one dependent across the
  // wire, and the avalanche terminated (wait_all returned).
  EXPECT_GE(coord.tracker().poisons_issued(), 1u);
  const auto results = coord.results();
  std::uint64_t restarts = 0, rollbacks = 0;
  for (const auto& r : results) {
    restarts += r.restarts;
    rollbacks += r.rollbacks;
  }
  EXPECT_GE(restarts, 2u);
  EXPECT_GE(rollbacks, 1u);

  coord.shutdown_agents();
  EXPECT_EQ(a0.reap(), 0);
}

/// The HA acceptance scenario (docs/CONTROL_PLANE.md): the *coordinator*
/// is the process that dies. A real `mojc cluster --wal-root` primary is
/// SIGKILLed mid-heat-grid; the agents hold their ranks through the
/// coordinator_grace window; an in-process standby waits out the lease,
/// replays the WAL, seals the dead primary's segment, and RE-ADOPTs the
/// still-running agents. The run must complete with zero rank loss (no
/// resurrection — nothing below the control plane failed) and the sums
/// must still bit-match the sequential reference.
TEST(DnodeE2E, CoordinatorKillFailsOverToStandbyWithSameSums) {
  const fs::path storage = fresh_dir("mojave_dnode_e2e_ha");
  const fs::path wal = fresh_dir("mojave_dnode_e2e_ha_wal");

  gridapp::HeatConfig hcfg;
  hcfg.nodes = 4;
  hcfg.rows = 16;
  hcfg.cols = 8;
  hcfg.steps = 48;
  hcfg.checkpoint_interval = 8;

  const fs::path prog = storage / "heat.mjc";
  {
    std::ofstream out(prog);
    out << gridapp::heat_mojc_source(hcfg);
  }

  AgentProc a0, a1;
  a0.start(storage);
  a1.start(storage);

  const std::string nodes = "127.0.0.1:" + std::to_string(a0.port) +
                            ",127.0.0.1:" + std::to_string(a1.port);
  const pid_t primary = ::fork();
  ASSERT_GE(primary, 0);
  if (primary == 0) {
    ::execl(MOJC_BIN, "mojc", "cluster", "--nodes", nodes.c_str(),
            "--ranks", "4", "--wal-root", wal.c_str(), "--lease-ttl", "1.0",
            "run", prog.c_str(), static_cast<char*>(nullptr));
    ::_exit(127);
  }

  // Mid-run marker: with checkpoint_interval 8 of 48 steps, the first
  // snapshots land early — the run is well underway and far from done.
  const auto store = ckpt::CheckpointStore::open_shared(storage);
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(60);
  while ((!store->has_snapshot("rank_1") || !store->has_snapshot("rank_3")) &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  ASSERT_TRUE(store->has_snapshot("rank_1")) << "rank 1 never checkpointed";
  ASSERT_TRUE(store->has_snapshot("rank_3")) << "rank 3 never checkpointed";

  // kill -9 the primary: no WAL close, no lease release, no goodbye.
  ::kill(primary, SIGKILL);
  ::waitpid(primary, nullptr, 0);

  // Standby protocol: wait out the dead primary's lease...
  const auto lease_deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (true) {
    const auto info = ctrl::Lease::read(wal);
    if (!info.has_value() || info->expired(ctrl::Lease::wall_now())) break;
    ASSERT_LT(std::chrono::steady_clock::now(), lease_deadline)
        << "dead primary's lease never expired";
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }

  // ...then take over: replay, seal, re-adopt. No launch_spmd — the
  // ranks are already running on the agents.
  auto ccfg = coord_config({a0.port, a1.port}, hcfg.nodes);
  ccfg.wal_root = wal;
  ccfg.lease_ttl_seconds = 1.0;
  ccfg.resume = true;
  dnode::Coordinator coord(std::move(ccfg));
  EXPECT_TRUE(coord.resumed());
  EXPECT_GE(coord.lease_epoch(), 2u);

  ASSERT_TRUE(coord.wait_all(120.0)) << "standby did not complete the run";
  expect_sums_match(coord, hcfg);
  // Zero rank loss: the agents never died, so the takeover must re-adopt
  // every rank rather than resurrect any.
  EXPECT_EQ(coord.resurrections(), 0u);
  EXPECT_FALSE(coord.fenced());

  coord.shutdown_agents();
  EXPECT_EQ(a0.reap(), 0);
  EXPECT_EQ(a1.reap(), 0);
}

TEST(DnodeCluster, InProcessAgentsRunHeatGrid) {
  const fs::path storage = fresh_dir("mojave_dnode_inproc");

  gridapp::HeatConfig hcfg;
  hcfg.nodes = 2;
  hcfg.rows = 8;
  hcfg.cols = 8;
  hcfg.steps = 16;
  hcfg.checkpoint_interval = 4;

  dnode::AgentConfig acfg;
  acfg.storage_root = storage;
  dnode::NodeAgent a0(acfg), a1(acfg);

  dnode::Coordinator coord(coord_config({a0.port(), a1.port()}, hcfg.nodes));
  coord.launch_spmd(gridapp::heat_program(hcfg));
  ASSERT_TRUE(coord.wait_all(120.0));
  expect_sums_match(coord, hcfg);
  // Round-robin placement, undisturbed (no faults, no balancing).
  EXPECT_EQ(coord.agent_of(0), 0u);
  EXPECT_EQ(coord.agent_of(1), 1u);
  coord.shutdown_agents();
}

TEST(DnodeCluster, BalancerMovesRankOffThrottledAgent) {
  const fs::path storage = fresh_dir("mojave_dnode_balance");

  gridapp::HeatConfig hcfg;
  hcfg.nodes = 2;
  hcfg.rows = 8;
  hcfg.cols = 8;
  hcfg.steps = 40;
  hcfg.checkpoint_interval = 4;

  dnode::AgentConfig fast;
  fast.storage_root = storage;
  dnode::AgentConfig slow = fast;
  slow.throttle_ms = 30;  // inflates heartbeat load and really slows sends
  dnode::NodeAgent a0(fast), a1(slow);

  auto ccfg = coord_config({a0.port(), a1.port()}, hcfg.nodes);
  ccfg.balance_interval_seconds = 0.2;
  ccfg.balance_threshold = 1.5;
  dnode::Coordinator coord(std::move(ccfg));
  coord.launch_spmd(gridapp::heat_program(hcfg));
  ASSERT_TRUE(coord.wait_all(120.0));
  expect_sums_match(coord, hcfg);

  // The load gap (throttled agent reports ~31x) forces at least one
  // checkpoint-yield migration onto the fast agent; both agents stay
  // alive throughout (this is migration, not failure recovery).
  EXPECT_GE(coord.migrations(), 1u);
  EXPECT_EQ(coord.agent_of(1), 0u);
  EXPECT_TRUE(coord.agent_alive(0));
  EXPECT_TRUE(coord.agent_alive(1));
  coord.shutdown_agents();
}

/// Rank density under a hostile WAN profile: 32 fiber ranks over 2
/// in-process agents (16 per event-loop thread) with every byte into
/// agent 1 squeezed through a bandwidth-capped, frame-reordering,
/// fragmenting WireChaosProxy. The cap backpressures the coalesced write
/// path (the sender's batches stall against a full socket buffer), the
/// reorderer swaps every 5th frame with its successor — tolerated because
/// heat tags every halo with (direction, timestep) and mailboxes key on
/// (src, tag) — and the sums must still bit-match the sequential
/// reference.
TEST(DnodeCluster, DenseRanksSurviveThrottledReorderingWire) {
  const fs::path storage = fresh_dir("mojave_dnode_dense_wire");

  gridapp::HeatConfig hcfg;
  hcfg.nodes = 32;
  hcfg.rows = 32;  // one row band per rank
  hcfg.cols = 8;
  hcfg.steps = 8;
  hcfg.checkpoint_interval = 0;

  dnode::AgentConfig acfg;
  acfg.storage_root = storage;
  acfg.heap.young_capacity = 64 * 1024;  // 32 co-hosted heaps
  acfg.heap.old_capacity = 1024 * 1024;
  dnode::NodeAgent a0(acfg), a1(acfg);

  net::WireFaults faults;
  faults.bandwidth_bytes_per_sec = 1.5e6;  // a narrow WAN, not a stall
  faults.reorder_every_n = 5;
  faults.split_bytes = 512;
  net::WireChaosProxy proxy("127.0.0.1", a1.port(), faults);

  dnode::Coordinator coord(
      coord_config({a0.port(), proxy.port()}, hcfg.nodes));
  coord.launch_spmd(gridapp::heat_program(hcfg));
  ASSERT_TRUE(coord.wait_all(120.0)) << "dense chaotic-wire run timed out";
  expect_sums_match(coord, hcfg);

  const auto stats = proxy.stats();
  EXPECT_GE(stats.connections, 2u);  // coordinator + agent 0's data link
  EXPECT_GT(stats.frames_reordered, 0u) << "reorder profile never fired";
  EXPECT_GT(stats.throttle_waits, 0u) << "bandwidth cap never engaged";
  EXPECT_GT(stats.split_writes, 0u);
  EXPECT_EQ(stats.resets, 0u);
  coord.shutdown_agents();
}

}  // namespace
