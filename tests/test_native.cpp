// Native-tier tests: the arch probe, tier equivalence (differential fuzz
// of randomly generated loop/arithmetic programs against the interpreter,
// including instruction accounting), deoptimization at speculation and
// budget boundaries, and native<->interpreter migration round trips.
//
// Every test that needs generated code skips — not fails — on hosts where
// the probe reports the tier unavailable (non-x86-64, W^X-restricted).
#include <gtest/gtest.h>

#include <filesystem>
#include <random>
#include <vector>

#include "fir/builder.hpp"
#include "fir/legalize.hpp"
#include "migrate/image.hpp"
#include "migrate/migrator.hpp"
#include "migrate/protocols.hpp"
#include "native/arch.hpp"
#include "native/engine.hpp"
#include "vm/process.hpp"

namespace {

using namespace mojave;
using fir::Atom;
using fir::Binop;
using fir::ProgramBuilder;
using fir::Type;
using fir::VarId;

namespace fs = std::filesystem;

vm::ProcessConfig jit_on(std::uint32_t threshold = 1) {
  vm::ProcessConfig cfg;
  cfg.jit.enabled = true;
  cfg.jit.threshold = threshold;
  return cfg;
}

vm::ProcessConfig jit_off() {
  vm::ProcessConfig cfg;
  cfg.jit.enabled = false;
  return cfg;
}

/// sum(0..n-1) via a self-tail-calling loop — the canonical hot shape.
fir::Program make_sum_loop(std::int64_t n) {
  ProgramBuilder pb("sum_loop");
  auto main_id = pb.declare("main", {});
  auto loop_id = pb.declare("loop", {Type::integer(), Type::integer()});
  {
    auto fb = pb.define(main_id, {});
    fb.tail_call(Atom::fun_ref(loop_id), {Atom::integer(0), Atom::integer(0)});
  }
  {
    auto fb = pb.define(loop_id, {"i", "acc"});
    auto done = fb.let_binop("done", Binop::kGe, fb.arg(0), Atom::integer(n));
    fb.branch(
        fb.v(done), [&](auto& t) { t.halt(t.arg(1)); },
        [&](auto& e) {
          auto acc = e.let_binop("acc2", Binop::kAdd, e.arg(1), e.arg(0));
          auto i1 = e.let_binop("i1", Binop::kAdd, e.arg(0), Atom::integer(1));
          e.tail_call(Atom::fun_ref(loop_id), {e.v(i1), e.v(acc)});
        });
  }
  return pb.take("main");
}

struct TierRun {
  std::int64_t exit_code = 0;
  std::uint64_t instructions = 0;
  std::uint64_t calls = 0;
  vm::OpClassCounts class_counts{};
  std::uint64_t compiled = 0;
  std::uint64_t deopts = 0;
};

TierRun run_tier(fir::Program prog, const vm::ProcessConfig& cfg) {
  vm::Process p(std::move(prog), cfg);
  TierRun out;
  out.exit_code = p.run().exit_code;
  out.instructions = p.vm().stats().instructions;
  out.calls = p.vm().stats().calls;
  out.class_counts = p.vm().op_class_counts();
  if (const native::Engine* eng = p.vm().native_engine()) {
    out.compiled = eng->compiled_functions();
    out.deopts = eng->total_deopts();
  }
  return out;
}

/// The two tiers must be observationally identical: same result, same
/// retired instruction count, same per-opcode-class breakdown, same call
/// count. This is the acceptance bar for every deopt/accounting path.
void expect_tiers_agree(const TierRun& native, const TierRun& interp) {
  EXPECT_EQ(native.exit_code, interp.exit_code);
  EXPECT_EQ(native.instructions, interp.instructions);
  EXPECT_EQ(native.calls, interp.calls);
  EXPECT_EQ(native.class_counts, interp.class_counts);
}

TEST(NativeArch, ProbeIsStableAndSane) {
  const bool first = native::jit_supported();
  EXPECT_EQ(native::jit_supported(), first);  // cached, not flapping
#if defined(__x86_64__)
  // On the CI hosts this suite targets, x86-64 implies the probe passes
  // unless the platform forbids W^X flips entirely; either answer must
  // still leave the interpreter fully functional (checked below).
#endif
  fir::Program prog = make_sum_loop(100);
  vm::Process p(std::move(prog), jit_off());
  EXPECT_EQ(p.run().exit_code, 4950);
}

TEST(NativeTier, HotLoopCompilesAndMatchesInterpreter) {
  if (!native::jit_supported()) GTEST_SKIP() << "native tier unsupported";
  const TierRun n = run_tier(make_sum_loop(50000), jit_on(2));
  const TierRun i = run_tier(make_sum_loop(50000), jit_off());
  expect_tiers_agree(n, i);
  EXPECT_EQ(n.exit_code, 50000LL * 49999 / 2);
  EXPECT_GE(n.compiled, 1u);  // the loop crossed the threshold
  EXPECT_EQ(i.compiled, 0u);  // no engine when disabled
}

TEST(NativeTier, ColdThresholdKeepsFunctionsInterpreted) {
  if (!native::jit_supported()) GTEST_SKIP() << "native tier unsupported";
  // One transfer into main + a handful into loop; a huge threshold means
  // nothing ever compiles and the run is pure interpretation.
  const TierRun n = run_tier(make_sum_loop(10), jit_on(1u << 30));
  EXPECT_EQ(n.exit_code, 45);
  EXPECT_EQ(n.compiled, 0u);
  EXPECT_EQ(n.deopts, 0u);
}

// ---------------------------------------------------------------------------
// Differential fuzz: random loop/arithmetic programs, both tiers,
// bit-identical results and instruction accounting.
// ---------------------------------------------------------------------------

/// A random straight-line body of integer arithmetic inside a hot loop.
/// Loop-carried state (a, b) and a heap accumulator make every generated
/// instruction observable in the final hash. Divisors are positive
/// constants so both tiers face the same (defined) semantics.
fir::Program make_int_fuzz(std::uint32_t seed, std::int64_t iters) {
  std::mt19937 rng(seed);
  auto rnd = [&](std::int64_t lo, std::int64_t hi) {
    return std::uniform_int_distribution<std::int64_t>(lo, hi)(rng);
  };
  static const Binop kOps[] = {
      Binop::kAdd, Binop::kSub, Binop::kMul, Binop::kAnd, Binop::kOr,
      Binop::kXor, Binop::kShl, Binop::kShr, Binop::kLt,  Binop::kLe,
      Binop::kGt,  Binop::kGe,  Binop::kEq,  Binop::kNe,  Binop::kDiv,
      Binop::kMod};

  ProgramBuilder pb("fuzz");
  auto main_id = pb.declare("main", {});
  auto loop_id = pb.declare(
      "loop", {Type::integer(), Type::integer(), Type::integer(), Type::ptr()});
  {
    auto fb = pb.define(main_id, {});
    auto buf = fb.let_alloc("buf", Atom::integer(1), Atom::integer(0));
    fb.tail_call(Atom::fun_ref(loop_id),
                 {Atom::integer(0), Atom::integer(rnd(-1000, 1000)),
                  Atom::integer(rnd(-1000, 1000)), fb.v(buf)});
  }
  {
    auto fb = pb.define(loop_id, {"i", "a", "b", "buf"});
    auto done = fb.let_binop("done", Binop::kGe, fb.arg(0),
                             Atom::integer(iters));
    fb.branch(
        fb.v(done),
        [&](auto& t) {
          auto acc = t.let_read("acc", Type::integer(), t.arg(3),
                                Atom::integer(0));
          auto h1 = t.let_binop("h1", Binop::kXor, t.v(acc), t.arg(1));
          auto h2 = t.let_binop("h2", Binop::kXor, t.v(h1), t.arg(2));
          auto lo = t.let_binop("lo", Binop::kAnd, t.v(h2),
                                Atom::integer(0x7fffffff));
          t.halt(t.v(lo));
        },
        [&](auto& e) {
          std::vector<VarId> pool;
          auto operand = [&]() -> Atom {
            const std::int64_t pick = rnd(0, 9);
            if (pick < 3) return e.arg(static_cast<std::uint32_t>(pick));
            if (pick < 5 || pool.empty()) return Atom::integer(rnd(-64, 64));
            return e.v(pool[static_cast<std::size_t>(
                rnd(0, static_cast<std::int64_t>(pool.size()) - 1))]);
          };
          const std::int64_t nops = rnd(4, 12);
          for (std::int64_t k = 0; k < nops; ++k) {
            const Binop op =
                kOps[static_cast<std::size_t>(rnd(0, std::ssize(kOps) - 1))];
            Atom lhs = operand();
            // Division by a positive constant only: zero divisors trap and
            // INT64_MIN / -1 overflows — both are separate tests.
            Atom rhs = (op == Binop::kDiv || op == Binop::kMod)
                           ? Atom::integer(rnd(1, 9))
                           : operand();
            pool.push_back(
                e.let_binop("t" + std::to_string(k), op, lhs, rhs));
          }
          auto acc = e.let_read("acc", Type::integer(), e.arg(3),
                                Atom::integer(0));
          auto mix = e.let_binop("mix", Binop::kAdd, e.v(acc),
                                 e.v(pool.back()));
          e.write(e.arg(3), Atom::integer(0), e.v(mix));
          auto i1 = e.let_binop("i1", Binop::kAdd, e.arg(0), Atom::integer(1));
          auto pick = [&]() {
            return e.v(pool[static_cast<std::size_t>(
                rnd(0, static_cast<std::int64_t>(pool.size()) - 1))]);
          };
          e.tail_call(Atom::fun_ref(loop_id), {e.v(i1), pick(), pick(),
                                               e.arg(3)});
        });
  }
  return pb.take("main");
}

/// Float fuzz: carried doubles through FAdd/FSub/FMul/FDiv and float
/// compares; the final value is hashed bit-exactly through a raw byte
/// buffer (raw_storef + 8-byte raw_load), so "close enough" cannot pass.
fir::Program make_float_fuzz(std::uint32_t seed, std::int64_t iters) {
  std::mt19937 rng(seed);
  auto rnd = [&](std::int64_t lo, std::int64_t hi) {
    return std::uniform_int_distribution<std::int64_t>(lo, hi)(rng);
  };
  static const Binop kFOps[] = {Binop::kFAdd, Binop::kFSub, Binop::kFMul,
                                Binop::kFDiv};
  static const Binop kFCmps[] = {Binop::kFLt, Binop::kFLe, Binop::kFGt,
                                 Binop::kFGe, Binop::kFEq, Binop::kFNe};

  ProgramBuilder pb("ffuzz");
  auto main_id = pb.declare("main", {});
  auto loop_id = pb.declare(
      "loop", {Type::integer(), Type::real(), Type::real(), Type::ptr()});
  {
    auto fb = pb.define(main_id, {});
    auto raw = fb.let_alloc_raw("raw", Atom::integer(8));
    fb.tail_call(Atom::fun_ref(loop_id),
                 {Atom::integer(0), Atom::real(rnd(-100, 100) / 7.0),
                  Atom::real(rnd(1, 100) / 3.0), fb.v(raw)});
  }
  {
    auto fb = pb.define(loop_id, {"i", "x", "y", "raw"});
    auto done = fb.let_binop("done", Binop::kGe, fb.arg(0),
                             Atom::integer(iters));
    fb.branch(
        fb.v(done),
        [&](auto& t) {
          t.raw_storef(t.arg(3), Atom::integer(0), t.arg(1));
          auto bits = t.let_raw_load("bits", 8, t.arg(3), Atom::integer(0));
          auto lo = t.let_binop("lo", Binop::kAnd, t.v(bits),
                                Atom::integer(0x7fffffff));
          t.halt(t.v(lo));
        },
        [&](auto& e) {
          std::vector<VarId> fpool;
          auto foperand = [&]() -> Atom {
            const std::int64_t pick = rnd(0, 5);
            if (pick < 2) return e.arg(1);
            if (pick < 3) return e.arg(2);
            if (pick < 4 || fpool.empty()) {
              return Atom::real(rnd(-50, 50) / 9.0);
            }
            return e.v(fpool[static_cast<std::size_t>(
                rnd(0, static_cast<std::int64_t>(fpool.size()) - 1))]);
          };
          const std::int64_t nops = rnd(3, 8);
          for (std::int64_t k = 0; k < nops; ++k) {
            const Binop op = kFOps[static_cast<std::size_t>(
                rnd(0, std::ssize(kFOps) - 1))];
            fpool.push_back(e.let_binop("f" + std::to_string(k), op,
                                        foperand(), foperand()));
          }
          // A float compare steers an int add so branch directions depend
          // on float state (NaN-compare semantics included).
          const Binop cmp = kFCmps[static_cast<std::size_t>(
              rnd(0, std::ssize(kFCmps) - 1))];
          auto c = e.let_binop("c", cmp, foperand(), foperand());
          auto i1 = e.let_binop("i1", Binop::kAdd, e.arg(0), Atom::integer(1));
          auto i2 = e.let_binop("i2", Binop::kAdd, e.v(i1), e.v(c));
          auto pick = [&]() {
            return e.v(fpool[static_cast<std::size_t>(
                rnd(0, static_cast<std::int64_t>(fpool.size()) - 1))]);
          };
          e.tail_call(Atom::fun_ref(loop_id),
                      {e.v(i2), pick(), pick(), e.arg(3)});
        });
  }
  return pb.take("main");
}

TEST(NativeDifferential, IntFuzzBothTiersBitIdentical) {
  if (!native::jit_supported()) GTEST_SKIP() << "native tier unsupported";
  for (std::uint32_t seed = 1; seed <= 12; ++seed) {
    const TierRun n = run_tier(make_int_fuzz(seed, 300), jit_on(1));
    const TierRun i = run_tier(make_int_fuzz(seed, 300), jit_off());
    SCOPED_TRACE("seed " + std::to_string(seed));
    expect_tiers_agree(n, i);
    EXPECT_GE(n.compiled, 1u);
  }
}

TEST(NativeDifferential, FloatFuzzBothTiersBitIdentical) {
  if (!native::jit_supported()) GTEST_SKIP() << "native tier unsupported";
  for (std::uint32_t seed = 100; seed <= 108; ++seed) {
    const TierRun n = run_tier(make_float_fuzz(seed, 200), jit_on(1));
    const TierRun i = run_tier(make_float_fuzz(seed, 200), jit_off());
    SCOPED_TRACE("seed " + std::to_string(seed));
    expect_tiers_agree(n, i);
  }
}

TEST(NativeDifferential, DivideByZeroTrapsIdenticallyMidLoop) {
  if (!native::jit_supported()) GTEST_SKIP() << "native tier unsupported";
  // loop(i): if i >= 100 halt 0; q = 1000 / (50 - i)  -- traps at i == 50,
  // after the loop is hot. The native tier must deopt on the guard and let
  // the interpreter raise the canonical SafetyError at the same point.
  auto make = [] {
    ProgramBuilder pb("divtrap");
    auto main_id = pb.declare("main", {});
    auto loop_id = pb.declare("loop", {Type::integer(), Type::integer()});
    {
      auto fb = pb.define(main_id, {});
      fb.tail_call(Atom::fun_ref(loop_id),
                   {Atom::integer(0), Atom::integer(0)});
    }
    {
      auto fb = pb.define(loop_id, {"i", "acc"});
      auto done = fb.let_binop("done", Binop::kGe, fb.arg(0),
                               Atom::integer(100));
      fb.branch(
          fb.v(done), [&](auto& t) { t.halt(t.arg(1)); },
          [&](auto& e) {
            auto d = e.let_binop("d", Binop::kSub, Atom::integer(50),
                                 e.arg(0));
            auto q = e.let_binop("q", Binop::kDiv, Atom::integer(1000),
                                 e.v(d));
            auto acc = e.let_binop("acc2", Binop::kAdd, e.arg(1), e.v(q));
            auto i1 = e.let_binop("i1", Binop::kAdd, e.arg(0),
                                  Atom::integer(1));
            e.tail_call(Atom::fun_ref(loop_id), {e.v(i1), e.v(acc)});
          });
    }
    return pb.take("main");
  };

  vm::OpClassCounts counts_native{}, counts_interp{};
  {
    vm::Process p(make(), jit_on(1));
    EXPECT_THROW((void)p.run(), SafetyError);
    counts_native = p.vm().op_class_counts();
    ASSERT_NE(p.vm().native_engine(), nullptr);
    EXPECT_GE(p.vm().native_engine()->deopt_count(
                  native::DeoptReason::kGuard),
              1u);
  }
  {
    vm::Process p(make(), jit_off());
    EXPECT_THROW((void)p.run(), SafetyError);
    counts_interp = p.vm().op_class_counts();
  }
  // The interpreter re-executes the trapping division itself, so the two
  // tiers must have retired exactly the same multiset of instructions.
  EXPECT_EQ(counts_native, counts_interp);
}

TEST(NativeDifferential, InstructionFuseFiresAtSamePoint) {
  if (!native::jit_supported()) GTEST_SKIP() << "native tier unsupported";
  // Pre-paid chunk budgeting + stub refunds must make the fuse land on the
  // same instruction as pure interpretation.
  auto cfg_n = jit_on(1);
  cfg_n.max_instructions = 5000;
  auto cfg_i = jit_off();
  cfg_i.max_instructions = 5000;
  vm::OpClassCounts counts_native{}, counts_interp{};
  {
    vm::Process p(make_sum_loop(1u << 20), cfg_n);
    EXPECT_THROW((void)p.run(), Error);  // "instruction budget exhausted"
    counts_native = p.vm().op_class_counts();
  }
  {
    vm::Process p(make_sum_loop(1u << 20), cfg_i);
    EXPECT_THROW((void)p.run(), Error);
    counts_interp = p.vm().op_class_counts();
  }
  EXPECT_EQ(counts_native, counts_interp);
}

// ---------------------------------------------------------------------------
// Deoptimization at speculation sites.
// ---------------------------------------------------------------------------

TEST(NativeDeopt, ForcedRollbackRestoresHeapFromNativeWrites) {
  if (!native::jit_supported()) GTEST_SKIP() << "native tier unsupported";
  // main: buf = alloc(1, 3); speculate body(c, buf)
  // body: first entry runs a *hot native loop* of speculative heap writes,
  // then aborts — every write must be rolled back even though they were
  // issued from compiled code (via the logging write barrier helper).
  ProgramBuilder pb("native_rollback");
  auto main_id = pb.declare("main", {});
  auto body_id = pb.declare("body", {Type::integer(), Type::ptr()});
  auto spin_id = pb.declare("spin",
                            {Type::integer(), Type::integer(), Type::ptr()});
  {
    auto fb = pb.define(main_id, {});
    auto buf = fb.let_alloc("buf", Atom::integer(1), Atom::integer(3));
    fb.speculate(Atom::fun_ref(body_id), {fb.v(buf)});
  }
  {
    auto fb = pb.define(body_id, {"c", "buf"});
    auto live = fb.let_binop("live", Binop::kGt, fb.arg(0), Atom::integer(0));
    fb.branch(
        fb.v(live),
        [&](auto& t) {
          t.tail_call(Atom::fun_ref(spin_id),
                      {Atom::integer(0), t.arg(0), t.arg(1)});
        },
        [&](auto& e) {
          auto x = e.let_read("x", Type::integer(), e.arg(1),
                              Atom::integer(0));
          e.halt(e.v(x));
        });
  }
  {
    auto fb = pb.define(spin_id, {"j", "c", "buf"});
    auto done = fb.let_binop("done", Binop::kGe, fb.arg(0),
                             Atom::integer(200));
    fb.branch(
        fb.v(done),
        [&](auto& t) { t.abort_spec(t.arg(1), Atom::integer(0)); },
        [&](auto& e) {
          auto acc = e.let_read("acc", Type::integer(), e.arg(2),
                                Atom::integer(0));
          auto acc1 = e.let_binop("acc1", Binop::kAdd, e.v(acc), e.arg(0));
          e.write(e.arg(2), Atom::integer(0), e.v(acc1));
          auto j1 = e.let_binop("j1", Binop::kAdd, e.arg(0),
                                Atom::integer(1));
          e.tail_call(Atom::fun_ref(spin_id), {e.v(j1), e.arg(1), e.arg(2)});
        });
  }
  vm::Process p(pb.take("main"), jit_on(1));
  EXPECT_EQ(p.run().exit_code, 3);  // all 200 native writes undone
  const native::Engine* eng = p.vm().native_engine();
  ASSERT_NE(eng, nullptr);
  EXPECT_GE(eng->compiled_functions(), 1u);
  EXPECT_GE(eng->deopt_count(native::DeoptReason::kSpeculate), 1u);
  EXPECT_GE(eng->deopt_count(native::DeoptReason::kRollback), 1u);
}

// ---------------------------------------------------------------------------
// Native <-> interpreter migration round trips.
// ---------------------------------------------------------------------------

/// Counts to `total` via a hot loop, checkpointing every `interval` steps.
fir::Program make_ckpt_counter(const std::string& target, std::int64_t total,
                               std::int64_t interval) {
  ProgramBuilder pb("native_counter");
  auto main_id = pb.declare("main", {});
  auto loop_id =
      pb.declare("loop", {Type::integer(), Type::integer(), Type::ptr()});
  {
    auto fb = pb.define(main_id, {});
    auto buf = fb.let_alloc("buf", Atom::integer(1), Atom::integer(0));
    fb.tail_call(Atom::fun_ref(loop_id),
                 {Atom::integer(1), Atom::integer(total), fb.v(buf)});
  }
  {
    auto fb = pb.define(loop_id, {"i", "total", "buf"});
    auto done = fb.let_binop("done", Binop::kGt, fb.arg(0), fb.arg(1));
    fb.branch(
        fb.v(done),
        [&](auto& t) {
          auto x = t.let_read("x", Type::integer(), t.arg(2),
                              Atom::integer(0));
          t.halt(t.v(x));
        },
        [&](auto& e) {
          auto old = e.let_read("old", Type::integer(), e.arg(2),
                                Atom::integer(0));
          auto acc = e.let_binop("acc", Binop::kAdd, e.v(old), e.arg(0));
          e.write(e.arg(2), Atom::integer(0), e.v(acc));
          auto i1 = e.let_binop("i1", Binop::kAdd, e.arg(0),
                                Atom::integer(1));
          auto m = e.let_binop("m", Binop::kMod, e.arg(0),
                               Atom::integer(interval));
          auto hit = e.let_unop("hit", fir::Unop::kNot, e.v(m));
          e.branch(
              e.v(hit),
              [&](auto& t2) {
                auto tgt =
                    t2.let_atom("tgt", Type::ptr(), pb.str(target));
                t2.migrate(7, t2.v(tgt), Atom::fun_ref(loop_id),
                           {t2.v(i1), t2.arg(1), t2.arg(2)});
              },
              [&](auto& e2) {
                e2.tail_call(Atom::fun_ref(loop_id),
                             {e2.v(i1), e2.arg(1), e2.arg(2)});
              });
        });
  }
  return pb.take("main");
}

TEST(NativeMigrate, HotProcessCheckpointsAndResumesOnEitherTier) {
  if (!native::jit_supported()) GTEST_SKIP() << "native tier unsupported";
  const fs::path dir = fs::temp_directory_path() / "mojave_native_ckpt";
  fs::create_directories(dir);
  const fs::path file = dir / "hot.img";
  fs::remove(file);
  constexpr std::int64_t kTotal = 500, kInterval = 64;
  constexpr std::int64_t kSum = kTotal * (kTotal + 1) / 2;

  // Run natively hot; every checkpoint is a migrate-site deopt, and the
  // packed image must be byte-compatible with pure-interpreter images.
  vm::Process p(make_ckpt_counter("checkpoint://" + file.string(), kTotal,
                                  kInterval),
                jit_on(1));
  migrate::Migrator mig(p);
  const auto result = p.run();
  EXPECT_EQ(result.kind, vm::RunResult::Kind::kHalted);
  EXPECT_EQ(result.exit_code, kSum);
  const native::Engine* eng = p.vm().native_engine();
  ASSERT_NE(eng, nullptr);
  EXPECT_GE(eng->compiled_functions(), 1u);
  EXPECT_GE(eng->deopt_count(native::DeoptReason::kMigrate), 1u);
  ASSERT_TRUE(fs::exists(file));

  // Resume the native-born image on a pure interpreter...
  {
    migrate::ResurrectOptions opts;
    opts.cfg = jit_off();
    opts.prepare = [](vm::Process& proc) {
      proc.adopt_hook(std::make_unique<migrate::Migrator>(proc));
    };
    auto res = migrate::resurrect_from_file(file, opts);
    EXPECT_EQ(res.run.kind, vm::RunResult::Kind::kHalted);
    EXPECT_EQ(res.run.exit_code, kSum);
  }
  // ...and again on a native tier (interpreter-born state runs native).
  {
    migrate::ResurrectOptions opts;
    opts.cfg = jit_on(1);
    opts.prepare = [](vm::Process& proc) {
      proc.adopt_hook(std::make_unique<migrate::Migrator>(proc));
    };
    auto res = migrate::resurrect_from_file(file, opts);
    EXPECT_EQ(res.run.kind, vm::RunResult::Kind::kHalted);
    EXPECT_EQ(res.run.exit_code, kSum);
  }
}

TEST(NativeMigrate, SuspendedHotLoopResumesIdenticallyOnBothTiers) {
  if (!native::jit_supported()) GTEST_SKIP() << "native tier unsupported";
  const fs::path dir = fs::temp_directory_path() / "mojave_native_susp";
  fs::create_directories(dir);
  const fs::path file = dir / "hot.img";
  fs::remove(file);
  constexpr std::int64_t kTotal = 500, kInterval = 200;
  constexpr std::int64_t kSum = kTotal * (kTotal + 1) / 2;

  // Suspend mid-loop while the loop is native-hot: the image captures
  // state a deopt handed back, in the unchanged process-image format.
  vm::Process p(make_ckpt_counter("suspend://" + file.string(), kTotal,
                                  kInterval),
                jit_on(1));
  migrate::Migrator mig(p);
  EXPECT_EQ(p.run().kind, vm::RunResult::Kind::kMigratedAway);
  ASSERT_TRUE(fs::exists(file));
  const std::vector<std::byte> img = migrate::Migrator::read_image_file(file);

  // The same image must finish with the same sum whether the destination
  // resumes it interpreted or native (it re-suspends at each interval hit,
  // so hop until halt, re-reading the fresh image).
  for (const bool dest_jit : {false, true}) {
    std::vector<std::byte> hop_img = img;
    std::int64_t final_code = -1;
    for (int hop = 0; hop < 8; ++hop) {
      auto unpacked = migrate::unpack_process(
          hop_img, dest_jit ? jit_on(1) : jit_off());
      migrate::Migrator m(*unpacked.process);
      const auto r = unpacked.process->resume(unpacked.resume_fun,
                                              std::move(unpacked.resume_args));
      if (r.kind == vm::RunResult::Kind::kHalted) {
        final_code = r.exit_code;
        break;
      }
      hop_img = migrate::Migrator::read_image_file(file);
    }
    EXPECT_EQ(final_code, kSum) << (dest_jit ? "native" : "interpreted")
                                << " destination";
  }
}

// ---------------------------------------------------------------------------
// FIR legalization (the canonicalization pass the native tier relies on).
// ---------------------------------------------------------------------------

TEST(Legalize, CanonicalizesConstLeftOperands) {
  ProgramBuilder pb("leg");
  auto main_id = pb.declare("main", {});
  {
    auto fb = pb.define(main_id, {});
    auto v = fb.let_atom("v", Type::integer(), Atom::integer(9));
    // Commutative: swapped. Compare: mirrored. Sub: must stay put (there
    // is no mirror for it).
    auto a = fb.let_binop("a", Binop::kAdd, Atom::integer(1), fb.v(v));
    auto c = fb.let_binop("c", Binop::kLt, Atom::integer(3), fb.v(v));
    auto s = fb.let_binop("s", Binop::kSub, Atom::integer(10), fb.v(v));
    auto t1 = fb.let_binop("t1", Binop::kAdd, fb.v(a), fb.v(c));
    auto t2 = fb.let_binop("t2", Binop::kAdd, fb.v(t1), fb.v(s));
    fb.halt(fb.v(t2));
  }
  fir::Program prog = pb.take("main");
  EXPECT_EQ(fir::legalize(prog), 2u);  // a and c rewritten, s untouched
  EXPECT_EQ(fir::legalize(prog), 0u);  // idempotent
  // (1+9) + (3<9) + (10-9) = 10 + 1 + 1
  vm::Process p(std::move(prog));
  EXPECT_EQ(p.run().exit_code, 12);
}

TEST(Legalize, MirroredComparesPreserveSemantics) {
  auto eval = [](Binop op, std::int64_t lhs_const, std::int64_t rhs_var) {
    ProgramBuilder pb("mirror");
    auto main_id = pb.declare("main", {});
    {
      auto fb = pb.define(main_id, {});
      auto v = fb.let_atom("v", Type::integer(), Atom::integer(rhs_var));
      auto c = fb.let_binop("c", op, Atom::integer(lhs_const), fb.v(v));
      fb.halt(fb.v(c));
    }
    vm::Process p(pb.take("main"));  // Process ctor legalizes
    return p.run().exit_code;
  };
  for (std::int64_t k : {-3, 4, 5, 6}) {
    EXPECT_EQ(eval(Binop::kLt, 5, k), 5 < k ? 1 : 0);
    EXPECT_EQ(eval(Binop::kLe, 5, k), 5 <= k ? 1 : 0);
    EXPECT_EQ(eval(Binop::kGt, 5, k), 5 > k ? 1 : 0);
    EXPECT_EQ(eval(Binop::kGe, 5, k), 5 >= k ? 1 : 0);
  }
}

}  // namespace
