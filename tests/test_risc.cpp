// RISC backend tests: differential execution against the bytecode
// interpreter (both backends must agree bit-for-bit on every program),
// speculation semantics on the second backend, and heterogeneous
// migration — pack on the bytecode backend, resume on the RISC machine.
#include <gtest/gtest.h>

#include <filesystem>
#include <sstream>

#include "frontend/compile.hpp"
#include "migrate/image.hpp"
#include "migrate/migrator.hpp"
#include "risc/disasm.hpp"
#include "risc/lower.hpp"
#include "risc/machine.hpp"
#include "support/rng.hpp"
#include "vm/lowering.hpp"
#include "vm/process.hpp"

namespace {

using namespace mojave;
namespace fs = std::filesystem;

struct BothResults {
  std::int64_t bytecode_code = 0;
  std::int64_t risc_code = 0;
  std::string bytecode_out;
  std::string risc_out;
};

BothResults run_on_both(const std::string& src) {
  fir::Program program = frontend::compile_source("diff", src);
  BothResults r;
  {
    std::ostringstream out;
    vm::ProcessConfig cfg;
    cfg.output = &out;
    cfg.max_instructions = 50'000'000;
    vm::Process p(fir::clone_program(program), cfg);
    const auto res = p.run();
    EXPECT_EQ(res.kind, vm::RunResult::Kind::kHalted);
    r.bytecode_code = res.exit_code;
    r.bytecode_out = out.str();
  }
  {
    std::ostringstream out;
    runtime::Heap heap;
    spec::SpeculationManager spec(heap);
    risc::Machine m(heap, spec, risc::lower(program));
    m.set_output(&out);
    m.set_max_instructions(100'000'000);
    const auto res = m.run();
    EXPECT_EQ(res.kind, risc::RRunResult::Kind::kHalted);
    r.risc_code = res.exit_code;
    r.risc_out = out.str();
  }
  return r;
}

TEST(Risc, AgreesOnArithmeticAndControlFlow) {
  const auto r = run_on_both(
      "int main() { int acc = 0;"
      "  for (int i = 1; i <= 12; i++) {"
      "    if (i % 3 == 0) { acc += i * i; } else { acc -= i; }"
      "  }"
      "  return acc; }");
  EXPECT_EQ(r.bytecode_code, r.risc_code);
}

TEST(Risc, AgreesOnHeapAndStrings) {
  const auto r = run_on_both(
      "int main() { ptr a = alloc(8);"
      "  for (int i = 0; i < 8; i++) { a[i] = i * 7; }"
      "  print_string(\"sum=\");"
      "  int s = 0;"
      "  for (int i = 0; i < 8; i++) { s += a[i]; }"
      "  print_int(s); print_string(\"\\n\");"
      "  return s; }");
  EXPECT_EQ(r.bytecode_code, r.risc_code);
  EXPECT_EQ(r.bytecode_out, r.risc_out);
  EXPECT_EQ(r.bytecode_out, "sum=196\n");
}

TEST(Risc, AgreesOnFloats) {
  const auto r = run_on_both(
      "int main() { float x = 1.5; float y = 0.25;"
      "  for (int i = 0; i < 10; i++) { x = x * 1.125 + y; }"
      "  return f2i(x * 1000.0); }");
  EXPECT_EQ(r.bytecode_code, r.risc_code);
}

TEST(Risc, SpeculationSemanticsMatch) {
  const auto r = run_on_both(
      "int main() { ptr a = alloc(1); a[0] = 10; int x = 1;"
      "  int id = speculate();"
      "  if (id > 0) { a[0] = 20; x = 2; abort(id); }"
      "  return a[0] * 100 + x * 10 + id; }");
  EXPECT_EQ(r.bytecode_code, r.risc_code);
  EXPECT_EQ(r.risc_code, 1010);
}

TEST(Risc, RollbackRetrySemanticsMatch) {
  const auto r = run_on_both(
      "int main() { ptr a = alloc(1); a[0] = 5;"
      "  int id = speculate();"
      "  if (id > 0) { a[0] = 99; rollback(id, 0 - 7); }"
      "  int lvl = spec_level(); commit(lvl);"
      "  return a[0] * 100 + lvl * 10 + (0 - id); }");
  EXPECT_EQ(r.bytecode_code, r.risc_code);
  EXPECT_EQ(r.risc_code, 517);
}

TEST(Risc, UserFunctionCallsAndRecursion) {
  const auto r = run_on_both(
      "int fib(int n) { if (n < 2) { return n; }"
      "  int a = fib(n - 1); int b = fib(n - 2); return a + b; }"
      "int main() { return fib(15); }");
  EXPECT_EQ(r.bytecode_code, r.risc_code);
  EXPECT_EQ(r.risc_code, 610);
}

TEST(Risc, SafetyChecksFireIdentically) {
  fir::Program program = frontend::compile_source(
      "oob", "int main() { ptr a = alloc(2); return a[5]; }");
  {
    vm::Process p(fir::clone_program(program));
    EXPECT_THROW((void)p.run(), SafetyError);
  }
  {
    runtime::Heap heap;
    spec::SpeculationManager spec(heap);
    risc::Machine m(heap, spec, risc::lower(program));
    EXPECT_THROW((void)m.run(), SafetyError);
  }
}

TEST(Risc, SpillTrafficIsAccounted) {
  fir::Program program = frontend::compile_source(
      "spill", "int main() { int a = 1; int b = 2; return a + b; }");
  runtime::Heap heap;
  spec::SpeculationManager spec(heap);
  risc::Machine m(heap, spec, risc::lower(program));
  EXPECT_EQ(m.run().exit_code, 3);
  // A load/store machine pays spill traffic the bytecode VM does not.
  EXPECT_GT(m.stats().spill_loads, 0u);
  EXPECT_GT(m.stats().spill_stores, 0u);
}

/// Differential property: random programs agree across backends.
class RiscDifferential : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RiscDifferential, RandomProgramsAgree) {
  Rng rng(GetParam());
  std::ostringstream src;
  src << "int main() {\n  int acc = " << rng.below(64) << ";\n"
      << "  ptr a = alloc(6);\n"
      << "  for (int i = 0; i < 6; i++) { a[i] = i * "
      << (1 + rng.below(5)) << "; }\n";
  for (int i = 0; i < 12; ++i) {
    switch (rng.below(6)) {
      case 0: src << "  acc += a[" << rng.below(6) << "];\n"; break;
      case 1: src << "  acc ^= " << rng.below(255) << ";\n"; break;
      case 2: src << "  acc *= " << (1 + rng.below(3)) << ";\n"; break;
      case 3:
        src << "  if (acc % " << (2 + rng.below(5))
            << " == 0) { acc += 11; } else { acc -= 5; }\n";
        break;
      case 4:
        src << "  for (int k = 0; k < " << (1 + rng.below(4))
            << "; k++) { acc += k; }\n";
        break;
      default:
        src << "  a[" << rng.below(6) << "] = acc & 1023;\n";
    }
  }
  src << "  return acc & 65535;\n}\n";
  const auto r = run_on_both(src.str());
  EXPECT_EQ(r.bytecode_code, r.risc_code) << src.str();
}

INSTANTIATE_TEST_SUITE_P(Seeds, RiscDifferential,
                         ::testing::Values(3, 6, 9, 12, 15, 18, 21, 24));

// --- Heterogeneous migration ---------------------------------------------------

TEST(Risc, HeterogeneousResumeFromBytecodeCheckpoint) {
  // Pack on the bytecode backend mid-run (suspend), then resume the image
  // on the RISC machine: the FIR image is backend-neutral, so the final
  // answer must match the single-backend run.
  const fs::path dir = fs::temp_directory_path() / "mojave_hetero";
  fs::create_directories(dir);
  const fs::path img = dir / "state.img";
  fs::remove(img);

  const std::string src =
      "int main() {\n"
      "  ptr a = alloc(16);\n"
      "  int acc = 0;\n"
      "  for (int i = 0; i < 16; i++) { a[i] = i * 13; acc += a[i]; }\n"
      "  migrate(\"suspend://" + img.string() + "\");\n"
      "  for (int i = 0; i < 16; i++) { acc += a[i] * 2; }\n"
      "  return acc & 65535;\n"
      "}\n";
  fir::Program program = frontend::compile_source("hetero", src);

  // Reference: uninterrupted bytecode run (replace suspend with checkpoint
  // by... simply run a clone without a migrator? It would throw at migrate.
  // Instead compute the expected value directly: acc = sum + 2*sum = 3*sum.
  std::int64_t sum = 0;
  for (int i = 0; i < 16; ++i) sum += i * 13;
  const std::int64_t expected = (3 * sum) & 65535;

  // Leg 1: bytecode backend runs to the suspend point.
  {
    vm::Process p(fir::clone_program(program));
    migrate::Migrator mig(p);
    ASSERT_EQ(p.run().kind, vm::RunResult::Kind::kMigratedAway);
  }
  ASSERT_TRUE(fs::exists(img));

  // Leg 2: reconstruct the heap via unpack (it also re-verifies the FIR),
  // then execute the remainder on the RISC machine over that same heap.
  const auto bytes = migrate::Migrator::read_image_file(img);
  migrate::UnpackResult unpacked = migrate::unpack_process(bytes);
  ASSERT_TRUE(unpacked.process->has_fir());

  risc::Machine machine(unpacked.process->heap(), unpacked.process->spec(),
                        risc::lower(unpacked.process->program()),
                        /*intern_strings=*/false);
  machine.set_string_blocks(unpacked.process->vm().string_blocks());
  const auto result =
      machine.run_from(unpacked.resume_fun, std::move(unpacked.resume_args));
  EXPECT_EQ(result.kind, risc::RRunResult::Kind::kHalted);
  EXPECT_EQ(result.exit_code, expected);
  EXPECT_GT(machine.stats().spill_loads, 0u);
}

TEST(Disasm, BothBackendsRenderPrograms) {
  fir::Program program = frontend::compile_source(
      "d", "int main() { ptr a = alloc(2); a[0] = 7; return a[0]; }");
  const std::string bc = vm::disassemble(vm::lower(program));
  EXPECT_NE(bc.find("bytecode program d"), std::string::npos);
  EXPECT_NE(bc.find("alloc"), std::string::npos);
  EXPECT_NE(bc.find("halt"), std::string::npos);
  const std::string rc = risc::disassemble(risc::lower(program));
  EXPECT_NE(rc.find("risc program d"), std::string::npos);
  EXPECT_NE(rc.find("sw"), std::string::npos);  // spill stores
  EXPECT_NE(rc.find("lw"), std::string::npos);
  EXPECT_NE(rc.find("hwrite"), std::string::npos);
}

}  // namespace
