// MojC frontend tests: parsing, semantic errors, and end-to-end execution
// of compiled programs — including the paper's Figure 1 speculative
// transfer example.
#include <gtest/gtest.h>

#include <sstream>

#include "frontend/compile.hpp"
#include "frontend/parser.hpp"
#include "vm/process.hpp"

namespace {

using namespace mojave;

std::int64_t run_mojc(const std::string& src, std::string* output = nullptr) {
  fir::Program prog = frontend::compile_source("test", src);
  std::ostringstream out;
  vm::ProcessConfig cfg;
  cfg.output = &out;
  cfg.max_instructions = 50'000'000;
  vm::Process p(std::move(prog), cfg);
  const auto r = p.run();
  EXPECT_EQ(r.kind, vm::RunResult::Kind::kHalted);
  if (output != nullptr) *output = out.str();
  return r.exit_code;
}

TEST(Frontend, ReturnsLiteral) {
  EXPECT_EQ(run_mojc("int main() { return 42; }"), 42);
}

TEST(Frontend, ArithmeticAndPrecedence) {
  EXPECT_EQ(run_mojc("int main() { return 2 + 3 * 4 - 6 / 2; }"), 11);
  EXPECT_EQ(run_mojc("int main() { return (2 + 3) * 4 % 7; }"), 6);
  EXPECT_EQ(run_mojc("int main() { return 1 << 4 | 3; }"), 19);
}

TEST(Frontend, FloatsAndConversions) {
  EXPECT_EQ(run_mojc("int main() { float x = 2.5; float y = x * 2.0; "
                     "return f2i(y); }"),
            5);
  EXPECT_EQ(run_mojc("int main() { float x = i2f(7) / 2.0; "
                     "return f2i(x * 2.0); }"),
            7);
  // Implicit int→float promotion in mixed arithmetic.
  EXPECT_EQ(run_mojc("int main() { float x = 1 + 0.5; return f2i(x * 2.0); }"),
            3);
}

TEST(Frontend, WhileLoopAndMutation) {
  EXPECT_EQ(run_mojc("int main() { int i = 0; int acc = 0;"
                     "  while (i < 10) { acc = acc + i; i = i + 1; }"
                     "  return acc; }"),
            45);
}

TEST(Frontend, BreakAndContinue) {
  EXPECT_EQ(run_mojc("int main() { int i = 0; int acc = 0;"
                     "  while (1) {"
                     "    i = i + 1;"
                     "    if (i > 10) { break; }"
                     "    if (i % 2 == 0) { continue; }"
                     "    acc = acc + i;"
                     "  }"
                     "  return acc; }"),
            25);  // 1+3+5+7+9
}

TEST(Frontend, ShortCircuitInConditions) {
  // RHS of && must not be evaluated when LHS is false: reading a[9] would
  // trap on the 2-slot block.
  EXPECT_EQ(run_mojc("int main() { ptr a = alloc(2); int i = 9;"
                     "  if (i < 2 && a[i] == 0) { return 1; }"
                     "  return 2; }"),
            2);
  EXPECT_EQ(run_mojc("int main() { ptr a = alloc(2); int i = 9;"
                     "  if (i >= 2 || a[i] == 0) { return 1; }"
                     "  return 2; }"),
            1);
}

TEST(Frontend, FunctionCallsAndRecursion) {
  EXPECT_EQ(run_mojc("int fib(int n) {"
                     "  if (n < 2) { return n; }"
                     "  int a = fib(n - 1);"
                     "  int b = fib(n - 2);"
                     "  return a + b;"
                     "}"
                     "int main() { return fib(12); }"),
            144);
}

TEST(Frontend, VoidFunctionsAndGlobalsViaPointers) {
  EXPECT_EQ(run_mojc("void bump(ptr cell, int by) {"
                     "  cell[0] = cell[0] + by;"
                     "}"
                     "int main() {"
                     "  ptr cell = alloc(1);"
                     "  bump(cell, 3); bump(cell, 4);"
                     "  return cell[0];"
                     "}"),
            7);
}

TEST(Frontend, ArraysAndRawMemory) {
  EXPECT_EQ(run_mojc("int main() {"
                     "  ptr a = alloc(10);"
                     "  int i = 0;"
                     "  while (i < 10) { a[i] = i * i; i = i + 1; }"
                     "  ptr r = alloc_raw(8);"
                     "  store32(r, 0, a[7]);"
                     "  return load32(r, 0) + len(a);"
                     "}"),
            59);
}

TEST(Frontend, FloatArrays) {
  EXPECT_EQ(run_mojc("int main() {"
                     "  ptr a = alloc(4);"
                     "  a[0] = 1.5; a[1] = 2.5;"
                     "  float s = readf(a, 0) + readf(a, 1);"
                     "  return f2i(s);"
                     "}"),
            4);
}

TEST(Frontend, PrintExternals) {
  std::string out;
  EXPECT_EQ(run_mojc("int main() {"
                     "  print_string(\"x=\"); print_int(41 + 1);"
                     "  print_string(\"\\n\");"
                     "  return 0; }",
                     &out),
            0);
  EXPECT_EQ(out, "x=42\n");
}

TEST(Frontend, SpeculationCommit) {
  EXPECT_EQ(run_mojc("int main() {"
                     "  ptr a = alloc(1); a[0] = 10;"
                     "  int id = speculate();"
                     "  if (id > 0) {"
                     "    a[0] = 20;"
                     "    commit(id);"
                     "    return a[0];"
                     "  }"
                     "  return a[0];"
                     "}"),
            20);
}

TEST(Frontend, SpeculationAbortRestoresLocalsAndHeap) {
  // Both the heap array AND the local variable x roll back: locals live in
  // the frame block, which is itself COW-versioned.
  EXPECT_EQ(run_mojc("int main() {"
                     "  ptr a = alloc(1); a[0] = 10;"
                     "  int x = 1;"
                     "  int id = speculate();"
                     "  if (id > 0) {"
                     "    a[0] = 20; x = 2;"
                     "    abort(id);"
                     "  }"
                     "  return a[0] * 100 + x * 10 + id;"
                     "}"),
            1010);  // a[0]=10 restored, x=1 restored, id=0 after abort
}

TEST(Frontend, Figure1TransferAtomicity) {
  // The paper's Figure 1 (bottom): a speculative transfer that swaps the
  // first k "bytes" (slots here) of two objects; injected write failure
  // aborts the speculation, and the objects must be untouched.
  const std::string src = R"(
    // read/write with injected failure: fail_at selects which write fails.
    int try_transfer(ptr obj1, ptr obj2, int k, int fail_at) {
      int id = speculate();
      if (id > 0) {
        // copy obj1 -> tmp1, obj2 -> tmp2
        ptr tmp1 = alloc(k);
        ptr tmp2 = alloc(k);
        int i = 0;
        while (i < k) { tmp1[i] = obj1[i]; tmp2[i] = obj2[i]; i = i + 1; }
        // write obj1 <- tmp2 (maybe failing), obj2 <- tmp1
        i = 0;
        while (i < k) {
          if (fail_at == i) { abort(id); }
          obj1[i] = tmp2[i];
          i = i + 1;
        }
        i = 0;
        while (i < k) {
          if (fail_at == k + i) { abort(id); }
          obj2[i] = tmp1[i];
          i = i + 1;
        }
        commit(id);
        return 1;  // success
      }
      return 0;  // speculation aborted -> failure, state restored
    }

    int main() {
      ptr a = alloc(4);
      ptr b = alloc(4);
      int i = 0;
      while (i < 4) { a[i] = 100 + i; b[i] = 200 + i; i = i + 1; }

      // Failing transfer mid-way through the second write: must be a no-op.
      int ok = try_transfer(a, b, 4, 6);
      if (ok != 0) { return 1; }
      i = 0;
      while (i < 4) {
        if (a[i] != 100 + i) { return 2; }
        if (b[i] != 200 + i) { return 3; }
        i = i + 1;
      }

      // Successful transfer: contents must be swapped.
      ok = try_transfer(a, b, 4, 0 - 1);
      if (ok == 0) { return 4; }
      i = 0;
      while (i < 4) {
        if (a[i] != 200 + i) { return 5; }
        if (b[i] != 100 + i) { return 6; }
        i = i + 1;
      }
      return 0;
    }
  )";
  EXPECT_EQ(run_mojc(src), 0);
}

TEST(Frontend, NestedSpeculations) {
  EXPECT_EQ(run_mojc("int main() {"
                     "  ptr a = alloc(1); a[0] = 1;"
                     "  int outer = speculate();"
                     "  if (outer > 0) {"
                     "    a[0] = 2;"
                     "    int inner = speculate();"
                     "    if (inner > 0) {"
                     "      a[0] = 3;"
                     "      abort(inner);"
                     "    }"
                     "    int mid = a[0];"
                     "    commit(outer);"
                     "    return mid * 10 + a[0];"
                     "  }"
                     "  return 0 - 1;"
                     "}"),
            22);
}

TEST(Frontend, RollbackRetries) {
  // rollback(id, c) re-enters the speculation with the new c.
  EXPECT_EQ(run_mojc("int main() {"
                     "  ptr a = alloc(1); a[0] = 5;"
                     "  int id = speculate();"
                     "  if (id > 0) {"
                     "    a[0] = 99;"
                     "    rollback(id, 0 - 7);"
                     "  }"
                     "  int lvl = spec_level();"
                     "  commit(lvl);"
                     "  return a[0] * 100 + lvl * 10 + (0 - id);"
                     "}"),
            517);  // 5*100 + 1*10 + 7
}

TEST(Frontend, SemanticErrors) {
  EXPECT_THROW(run_mojc("int main() { return x; }"), TypeError);
  EXPECT_THROW(run_mojc("int main() { int x = 1; int x = 2; return x; }"),
               TypeError);
  EXPECT_THROW(run_mojc("int main() { float f = 1.5; return f; }"), TypeError);
  EXPECT_THROW(run_mojc("void f() {} int main() { int x = f(); return x; }"),
               TypeError);
  EXPECT_THROW(run_mojc("int main() { return undeclared_fn(); }"), TypeError);
  EXPECT_THROW(run_mojc("int main() { speculate(); return 0; }"), TypeError);
  EXPECT_THROW(run_mojc("int main() { break; }"), TypeError);
  EXPECT_THROW(run_mojc("int g(int a) { return a; }"
                        "int main() { return g(1) + 1; }"),
               TypeError);  // user calls cannot nest in expressions
}

TEST(Frontend, ParseErrors) {
  EXPECT_THROW(run_mojc("int main() { return 1 }"), ParseError);
  EXPECT_THROW(run_mojc("int main( { return 1; }"), ParseError);
  EXPECT_THROW(run_mojc("int main() { \"unterminated }"), ParseError);
  EXPECT_THROW(run_mojc("int main() { int x = 1e; return x; }"), ParseError);
}

TEST(Frontend, ScopesAreLexical) {
  EXPECT_EQ(run_mojc("int main() {"
                     "  int x = 1;"
                     "  { int y = 10; x = x + y; }"
                     "  { int y = 20; x = x + y; }"
                     "  return x;"
                     "}"),
            31);
  // A name declared inside a block is not visible outside it.
  EXPECT_THROW(run_mojc("int main() { { int y = 1; } return y; }"), TypeError);
}

TEST(Frontend, ExternDeclarations) {
  fir::Program prog = frontend::compile_source(
      "ext", "extern int my_host_fn(int, int);"
             "int main() { int r = my_host_fn(20, 22); return r; }");
  vm::Process p(std::move(prog));
  p.vm().register_external(
      "my_host_fn",
      [](vm::Interpreter&, std::span<const runtime::Value> args) {
        return runtime::Value::from_int(args[0].as_int() + args[1].as_int());
      });
  EXPECT_EQ(p.run().exit_code, 42);
}

}  // namespace
