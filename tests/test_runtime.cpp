// Runtime substrate unit tests: tagged values, blocks, the pointer table,
// raw-memory canonical encoding, and the write barrier plumbing.
#include <gtest/gtest.h>

#include "runtime/heap.hpp"
#include "runtime/value_codec.hpp"
#include "support/serialize.hpp"

namespace {

using namespace mojave;
using runtime::Block;
using runtime::BlockKind;
using runtime::Generation;
using runtime::Heap;
using runtime::HeapConfig;
using runtime::PtrValue;
using runtime::RootSet;
using runtime::Tag;
using runtime::Value;

TEST(Value, TagChecksOnEveryAccessor) {
  const Value i = Value::from_int(42);
  EXPECT_EQ(i.as_int(), 42);
  EXPECT_THROW((void)i.as_float(), SafetyError);
  EXPECT_THROW((void)i.as_ptr(), SafetyError);
  EXPECT_THROW((void)i.as_fun(), SafetyError);

  const Value f = Value::from_float(2.5);
  EXPECT_EQ(f.as_float(), 2.5);
  EXPECT_THROW((void)f.as_int(), SafetyError);

  const Value p = Value::from_ptr(3, 7);
  EXPECT_EQ(p.as_ptr().index, 3u);
  EXPECT_EQ(p.as_ptr().offset, 7u);
  EXPECT_THROW((void)p.as_int(), SafetyError);

  const Value u = Value::unit();
  EXPECT_TRUE(u.is(Tag::kUnit));
  EXPECT_THROW((void)u.as_int(), SafetyError);
}

TEST(Value, EqualityAndPrinting) {
  EXPECT_EQ(Value::from_int(1), Value::from_int(1));
  EXPECT_NE(Value::from_int(1), Value::from_int(2));
  EXPECT_NE(Value::from_int(1), Value::from_float(1.0));
  EXPECT_EQ(Value::from_ptr(2, 3).to_string(), "<2+3>");
  EXPECT_EQ(Value::unit().to_string(), "()");
}

TEST(ValueCodec, RoundTripsEveryTag) {
  const Value cases[] = {
      Value::unit(), Value::from_int(-123456789), Value::from_float(3.25),
      Value::from_ptr(77, 12), Value::from_fun(5)};
  for (const Value& v : cases) {
    Writer w;
    runtime::write_value(w, v);
    Reader r(w.view());
    EXPECT_EQ(runtime::read_value(r), v);
    EXPECT_TRUE(r.done());
  }
}

TEST(PointerTable, ValidatesIndexAndFreeEntries) {
  Heap heap;
  const BlockIndex idx = heap.alloc_tagged(4);
  EXPECT_NE(heap.deref(idx), nullptr);
  // Index 0 is the permanent null pointer.
  EXPECT_THROW((void)heap.deref(kNullIndex), SafetyError);
  // Out-of-range index.
  EXPECT_THROW((void)heap.deref(9999), SafetyError);
  // Freed entries are rejected (the "free entry" check).
  heap.table().release(idx);
  EXPECT_THROW((void)heap.deref(idx), SafetyError);
  // Release is idempotent.
  heap.table().release(idx);
}

TEST(PointerTable, ReusesFreedEntries) {
  Heap heap;
  RootSet roots(heap);
  const BlockIndex a = heap.alloc_tagged(1);
  heap.table().release(a);
  const BlockIndex b = heap.alloc_tagged(1);
  EXPECT_EQ(a, b);  // freed slot is recycled
  roots.pin(Value::from_ptr(b, 0));
}

TEST(PointerTable, RestoreAtEnforcesOrderAndThreadsFreeList) {
  Heap heap(HeapConfig{.old_capacity = 1u << 20});
  Block* b5 = heap.restore_block(5, BlockKind::kTagged, 2);
  EXPECT_EQ(b5->h.index, 5u);
  EXPECT_EQ(heap.deref(5), b5);
  // Skipped entries 1..4 are free...
  EXPECT_TRUE(heap.table().is_free(3));
  // ...and out-of-order restore is rejected.
  EXPECT_THROW((void)heap.restore_block(4, BlockKind::kRaw, 1), ImageError);
  // The skipped slots are on the free list for future allocations.
  RootSet roots(heap);
  const BlockIndex fresh = heap.alloc_tagged(1);
  roots.pin(Value::from_ptr(fresh, 0));
  EXPECT_LT(fresh, 5u);
}

TEST(Block, SlotBoundsAndKindChecks) {
  Heap heap;
  const BlockIndex t = heap.alloc_tagged(3);
  EXPECT_THROW((void)heap.read_slot(t, 3), SafetyError);
  EXPECT_THROW(heap.raw_store(t, 0, 4, 1), SafetyError);  // raw op on tagged

  const BlockIndex r = heap.alloc_raw(8);
  EXPECT_THROW((void)heap.read_slot(r, 0), SafetyError);  // tagged op on raw
  EXPECT_THROW((void)heap.raw_load(r, 5, 4), SafetyError);  // 5+4 > 8
  EXPECT_THROW((void)heap.raw_load(r, 0, 3), SafetyError);  // bad width
  (void)heap.raw_load(r, 4, 4);  // exactly at the end: fine
}

TEST(Heap, RawMemoryIsCanonicalLittleEndian) {
  Heap heap;
  const BlockIndex r = heap.alloc_raw(16);
  heap.raw_store(r, 0, 4, 0x01020304);
  EXPECT_EQ(heap.raw_load(r, 0, 1), 0x04);
  EXPECT_EQ(heap.raw_load(r, 1, 1), 0x03);
  EXPECT_EQ(heap.raw_load(r, 2, 1), 0x02);
  EXPECT_EQ(heap.raw_load(r, 3, 1), 0x01);

  // Sign extension on narrow loads.
  heap.raw_store(r, 8, 1, -1);
  EXPECT_EQ(heap.raw_load(r, 8, 1), -1);
  heap.raw_store(r, 8, 2, -2);
  EXPECT_EQ(heap.raw_load(r, 8, 2), -2);

  // Doubles round-trip through the bit pattern.
  heap.raw_store_f64(r, 8, 6.125);
  EXPECT_EQ(heap.raw_load_f64(r, 8), 6.125);
}

TEST(Heap, StringsAreNulTerminatedRawBlocks) {
  Heap heap;
  const BlockIndex s = heap.alloc_string("hello");
  EXPECT_EQ(heap.deref(s)->h.kind, BlockKind::kRaw);
  EXPECT_EQ(heap.deref(s)->h.count, 6u);
  EXPECT_EQ(heap.read_string(PtrValue{s, 0}), "hello");
  EXPECT_EQ(heap.read_string(PtrValue{s, 2}), "llo");
  EXPECT_THROW((void)heap.read_string(PtrValue{s, 99}), SafetyError);

  const BlockIndex t = heap.alloc_tagged(1);
  EXPECT_THROW((void)heap.read_string(PtrValue{t, 0}), SafetyError);
}

TEST(Heap, OversizedBlocksGoStraightToOldGeneration) {
  Heap heap(HeapConfig{.young_capacity = 4096, .old_capacity = 1u << 20});
  RootSet roots(heap);
  const BlockIndex big = heap.alloc_tagged(1000);  // 16 KB > nursery/2
  roots.pin(Value::from_ptr(big, 0));
  EXPECT_EQ(heap.deref(big)->h.generation, Generation::kOld);
  const BlockIndex small = heap.alloc_tagged(4);
  roots.pin(Value::from_ptr(small, 0));
  EXPECT_EQ(heap.deref(small)->h.generation, Generation::kYoung);
}

TEST(Heap, PerBlockOverheadIsReported) {
  Heap heap;
  // The paper quotes >12 bytes/block on IA32; ours carries GC + speculation
  // state too. The exact number matters less than it being accounted for.
  EXPECT_GE(heap.per_block_overhead(), 12u);
  EXPECT_LE(heap.per_block_overhead(), 64u);
}

TEST(Heap, CowCloneRedirectsTableAndPreservesOldVersion) {
  Heap heap;
  RootSet roots(heap);
  const BlockIndex idx = heap.alloc_tagged(2);
  roots.pin(Value::from_ptr(idx, 0));
  heap.write_slot(idx, 0, Value::from_int(1));
  heap.write_slot(idx, 1, Value::from_int(2));

  Block* before = heap.deref(idx);
  auto pair = heap.cow_clone(idx);
  EXPECT_EQ(pair.old_version, before);
  EXPECT_NE(pair.clone, before);
  EXPECT_EQ(heap.deref(idx), pair.clone);       // table redirected
  EXPECT_EQ(pair.clone->h.index, idx);          // back-index stamped
  EXPECT_EQ(pair.clone->slot(0).as_int(), 1);   // payload copied
  EXPECT_EQ(pair.clone->slot(1).as_int(), 2);
  // Mutating the clone leaves the old version intact.
  heap.write_slot(idx, 0, Value::from_int(99));
  EXPECT_EQ(pair.old_version->slot(0).as_int(), 1);
  EXPECT_EQ(heap.stats().cow_clones, 1u);
}

TEST(Heap, ResetClearsEverything) {
  Heap heap;
  (void)heap.alloc_tagged(4);
  (void)heap.alloc_raw(100);
  heap.reset();
  EXPECT_EQ(heap.table().live_entries(), 0u);
  EXPECT_EQ(heap.young_used(), 0u);
  EXPECT_EQ(heap.old_used(), 0u);
}

TEST(Support, WriterReaderRoundTrip) {
  Writer w;
  w.u8(7);
  w.u16(0x1234);
  w.u32(0xdeadbeef);
  w.u64(0x123456789abcdef0ULL);
  w.i64(-42);
  w.f64(-2.5);
  w.str("mojave");
  Reader r(w.view());
  EXPECT_EQ(r.u8(), 7);
  EXPECT_EQ(r.u16(), 0x1234);
  EXPECT_EQ(r.u32(), 0xdeadbeefu);
  EXPECT_EQ(r.u64(), 0x123456789abcdef0ULL);
  EXPECT_EQ(r.i64(), -42);
  EXPECT_EQ(r.f64(), -2.5);
  EXPECT_EQ(r.str(), "mojave");
  EXPECT_TRUE(r.done());
}

TEST(Support, ReaderRejectsTruncation) {
  Writer w;
  w.u32(5);
  Reader r(w.view());
  (void)r.u16();
  EXPECT_THROW((void)r.u32(), ImageError);
  Reader r2(w.view());
  EXPECT_THROW((void)r2.str(), ImageError);  // length 5 but only 4 bytes
}

TEST(Support, WriterPatching) {
  Writer w;
  const std::size_t pos = w.size();
  w.u32(0);
  w.u32(777);
  w.patch_u32(pos, 42);
  Reader r(w.view());
  EXPECT_EQ(r.u32(), 42u);
  EXPECT_EQ(r.u32(), 777u);
  EXPECT_THROW(w.patch_u32(w.size() - 2, 1), ImageError);
}

}  // namespace
