// Chaos test: repeated random node kills during a longer grid run, with
// the auto-resurrection daemon active. Whatever the failure schedule, the
// computation must converge to exactly the failure-free answer — the
// strongest form of the paper's reliability claim.
#include <gtest/gtest.h>

#include <chrono>
#include <thread>

#include "gridapp/heat.hpp"
#include "support/rng.hpp"

namespace {

using namespace mojave;

class GridChaos : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(GridChaos, RepeatedKillsStillProduceTheReferenceAnswer) {
  gridapp::HeatConfig cfg;
  cfg.nodes = 3;
  cfg.rows = 12;
  cfg.cols = 8;
  cfg.steps = 90;
  cfg.checkpoint_interval = 9;

  cluster::ClusterConfig ccfg;
  ccfg.num_nodes = cfg.nodes;
  ccfg.recv_timeout_seconds = 30.0;

  Rng rng(GetParam());
  const auto run = gridapp::run_heat(cfg, ccfg, [&](cluster::Cluster& cl) {
    cl.enable_auto_resurrection(0.01);
    // Two kill rounds against random victims, each after the victim has a
    // checkpoint to come back from.
    for (int round = 0; round < 2; ++round) {
      const auto victim = static_cast<net::NodeId>(rng.below(cfg.nodes));
      const std::string ckpt = cl.checkpoint_name(victim);
      for (int i = 0; i < 3000 && !cl.storage().exists(ckpt); ++i) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
      if (!cl.storage().exists(ckpt)) continue;
      std::this_thread::sleep_for(
          std::chrono::milliseconds(rng.below(20)));
      if (!cl.network().alive(victim)) continue;  // still recovering
      cl.kill(victim);
      std::this_thread::sleep_for(std::chrono::milliseconds(30));
    }
  });

  ASSERT_TRUE(run.all_clean) << [&] {
    std::string s;
    for (const auto& n : run.nodes) {
      s += "rank " + std::to_string(n.rank) + ": " + n.error + "; ";
    }
    return s;
  }();
  const auto ref = gridapp::heat_reference_sums(cfg);
  for (std::uint32_t r = 0; r < cfg.nodes; ++r) {
    EXPECT_NEAR(run.sums[r], ref[r], 1e-9) << "rank " << r;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GridChaos, ::testing::Values(31, 62, 93));

}  // namespace
