// Chaos test: repeated random node kills during a longer grid run, with
// the auto-resurrection daemon active. Whatever the failure schedule, the
// computation must converge to exactly the failure-free answer — the
// strongest form of the paper's reliability claim.
#include <gtest/gtest.h>

#include <chrono>
#include <cstring>
#include <thread>

#include "ckpt/store.hpp"
#include "gridapp/heat.hpp"
#include "obs/metrics.hpp"
#include "support/rng.hpp"

namespace {

using namespace mojave;

class GridChaos : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(GridChaos, RepeatedKillsStillProduceTheReferenceAnswer) {
  gridapp::HeatConfig cfg;
  cfg.nodes = 3;
  cfg.rows = 12;
  cfg.cols = 8;
  cfg.steps = 90;
  cfg.checkpoint_interval = 9;

  cluster::ClusterConfig ccfg;
  ccfg.num_nodes = cfg.nodes;
  ccfg.recv_timeout_seconds = 30.0;

  Rng rng(GetParam());
  const auto run = gridapp::run_heat(cfg, ccfg, [&](cluster::Cluster& cl) {
    cl.enable_auto_resurrection(0.01);
    // Two kill rounds against random victims, each after the victim has a
    // checkpoint to come back from.
    for (int round = 0; round < 2; ++round) {
      const auto victim = static_cast<net::NodeId>(rng.below(cfg.nodes));
      for (int i = 0; i < 3000 && !cl.has_checkpoint(victim); ++i) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
      if (!cl.has_checkpoint(victim)) continue;
      std::this_thread::sleep_for(
          std::chrono::milliseconds(rng.below(20)));
      if (!cl.network().alive(victim)) continue;  // still recovering
      cl.kill(victim);
      std::this_thread::sleep_for(std::chrono::milliseconds(30));
    }
  });

  ASSERT_TRUE(run.all_clean) << [&] {
    std::string s;
    for (const auto& n : run.nodes) {
      s += "rank " + std::to_string(n.rank) + ": " + n.error + "; ";
    }
    return s;
  }();
  const auto ref = gridapp::heat_reference_sums(cfg);
  for (std::uint32_t r = 0; r < cfg.nodes; ++r) {
    EXPECT_NEAR(run.sums[r], ref[r], 1e-9) << "rank " << r;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GridChaos, ::testing::Values(31, 62, 93));

/// The full fault matrix: every message on every link can be dropped,
/// duplicated, reordered, or corrupted — plus one kill-and-resurrect —
/// and the grid must still converge to the failure-free answer.
///
/// Each fault class recovers through a different path: corruption via the
/// cluster frame checksum + sender replay log; drops via recv timeout →
/// MSG_ROLL → rollback, whose poison cascades to the sender and forces a
/// deterministic re-send; duplicates and reorders are absorbed by the
/// per-step tag scheme.
class GridFaultMatrix : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(GridFaultMatrix, LossyLinksPlusKillStillProduceTheReferenceAnswer) {
  gridapp::HeatConfig cfg;
  cfg.nodes = 3;
  cfg.rows = 12;
  cfg.cols = 8;
  cfg.steps = 60;
  cfg.checkpoint_interval = 9;

  cluster::ClusterConfig ccfg;
  ccfg.num_nodes = cfg.nodes;
  // Short enough that a dropped halo message costs a fast rollback-retry,
  // long enough that resurrection latency cannot fake a timeout storm.
  ccfg.recv_timeout_seconds = 0.5;
  ccfg.net.faults.seed = GetParam();
  ccfg.net.faults.all_links = {
      .drop = 0.01, .duplicate = 0.01, .reorder = 0.02, .corrupt = 0.02};

  const auto snap_before = obs::MetricsRegistry::instance().snapshot();
  const auto counter_at = [](const obs::RegistrySnapshot& snap,
                             const std::string& name) -> std::uint64_t {
    const auto it = snap.counters.find(name);
    return it == snap.counters.end() ? 0 : it->second;
  };

  Rng rng(GetParam());
  const auto run = gridapp::run_heat(cfg, ccfg, [&](cluster::Cluster& cl) {
    cl.enable_auto_resurrection(0.01);
    const auto victim = static_cast<net::NodeId>(rng.below(cfg.nodes));
    for (int i = 0; i < 5000 && !cl.has_checkpoint(victim); ++i) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    if (!cl.has_checkpoint(victim)) return;
    cl.kill(victim);
    // Once the daemon has resurrected the victim, the at-most-once guard
    // must refuse a second, racing resurrection of a live rank.
    for (int i = 0; i < 5000 && !cl.network().alive(victim); ++i) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    EXPECT_TRUE(cl.network().alive(victim)) << "daemon never resurrected";
    EXPECT_FALSE(cl.resurrect(victim)) << "double resurrection allowed";
  });

  ASSERT_TRUE(run.all_clean) << [&] {
    std::string s;
    for (const auto& n : run.nodes) {
      s += "rank " + std::to_string(n.rank) + ": " + n.error + "; ";
    }
    return s;
  }();
  ASSERT_EQ(run.nodes.size(), cfg.nodes) << "census: one result per rank";
  const auto ref = gridapp::heat_reference_sums(cfg);
  for (std::uint32_t r = 0; r < cfg.nodes; ++r) {
    EXPECT_NEAR(run.sums[r], ref[r], 1e-9) << "rank " << r;
  }

  // The fault machinery genuinely fired: some class of fault was injected,
  // and every corrupted frame the receivers saw was caught by the checksum.
  const auto snap_after = obs::MetricsRegistry::instance().snapshot();
  const std::uint64_t injected =
      (counter_at(snap_after, "net.sim.faults_dropped") -
       counter_at(snap_before, "net.sim.faults_dropped")) +
      (counter_at(snap_after, "net.sim.faults_duplicated") -
       counter_at(snap_before, "net.sim.faults_duplicated")) +
      (counter_at(snap_after, "net.sim.faults_reordered") -
       counter_at(snap_before, "net.sim.faults_reordered")) +
      (counter_at(snap_after, "net.sim.faults_corrupted") -
       counter_at(snap_before, "net.sim.faults_corrupted"));
  EXPECT_GT(injected, 0u) << "fault plan injected nothing — test is vacuous";
}

INSTANTIATE_TEST_SUITE_P(FaultSeeds, GridFaultMatrix,
                         ::testing::Values(17, 42, 1009));

std::uint64_t restore_fallbacks() {
  const auto snap = obs::MetricsRegistry::instance().snapshot();
  const auto it = snap.counters.find("ckpt.restore_fallbacks");
  return it == snap.counters.end() ? 0 : it->second;
}

TEST(GridChaos, KillMidCheckpointResurrectsFromLastCompleteManifest) {
  // A node dies *during* a checkpoint: the chunk writes may have landed
  // but the manifest did not (here: landed torn). The store must treat the
  // newest manifest as unrestorable and resurrect the victim from the last
  // complete one — costing at most one checkpoint interval, never a torn
  // image or a stuck rank.
  gridapp::HeatConfig cfg;
  cfg.nodes = 3;
  cfg.rows = 12;
  cfg.cols = 8;
  cfg.steps = 90;
  cfg.checkpoint_interval = 9;

  cluster::ClusterConfig ccfg;
  ccfg.num_nodes = cfg.nodes;
  ccfg.recv_timeout_seconds = 30.0;

  const std::uint64_t fallbacks_before = restore_fallbacks();
  const auto run = gridapp::run_heat(cfg, ccfg, [&](cluster::Cluster& cl) {
    const auto& store = cl.ckpt_store();
    ASSERT_NE(store, nullptr);
    const std::string victim = cl.snapshot_name(1);
    // Let the victim finish at least two checkpoints so there is a
    // previous complete manifest to fall back to.
    for (int i = 0; i < 5000 && store->latest_seq(victim) < 2; ++i) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    ASSERT_GE(store->latest_seq(victim), 2u) << "victim never checkpointed";
    cl.kill(1);
    // Give the dying thread a moment to unwind past any in-flight put().
    std::this_thread::sleep_for(std::chrono::milliseconds(50));

    // Emulate the torn manifest the mid-checkpoint crash leaves behind:
    // replace the newest one with garbage.
    const auto manifests =
        cl.storage().list(ckpt::CheckpointStore::kManifestDir);
    std::string newest;
    for (const auto& name : manifests) {
      if (name.find("/" + victim + "@") != std::string::npos) newest = name;
    }
    ASSERT_FALSE(newest.empty());
    const char garbage[] = "not a manifest";
    cl.storage().write(
        newest, std::as_bytes(std::span(garbage, std::strlen(garbage))));

    ASSERT_TRUE(cl.resurrect(1)) << "no restorable checkpoint survived";
  });

  ASSERT_TRUE(run.all_clean) << [&] {
    std::string s;
    for (const auto& n : run.nodes) {
      s += "rank " + std::to_string(n.rank) + ": " + n.error + "; ";
    }
    return s;
  }();
  const auto ref = gridapp::heat_reference_sums(cfg);
  for (std::uint32_t r = 0; r < cfg.nodes; ++r) {
    EXPECT_NEAR(run.sums[r], ref[r], 1e-9) << "rank " << r;
  }
  // The restore really did skip the torn manifest.
  EXPECT_GT(restore_fallbacks(), fallbacks_before);
}

}  // namespace
