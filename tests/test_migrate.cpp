// Migration tests: pack/unpack round trips, the three protocols, the
// migration server, and safety rejection of corrupt/forged images.
#include <gtest/gtest.h>

#include <filesystem>

#include "fir/builder.hpp"
#include "migrate/image.hpp"
#include "migrate/migrator.hpp"
#include "migrate/protocols.hpp"
#include "migrate/server.hpp"
#include "net/chaos.hpp"
#include "net/retry.hpp"
#include "obs/metrics.hpp"
#include "vm/process.hpp"

namespace {

using namespace mojave;
using fir::Atom;
using fir::Binop;
using fir::ProgramBuilder;
using fir::Type;
using runtime::Value;

namespace fs = std::filesystem;

/// A program that counts to `total`, checkpointing (or migrating) via the
/// given target every `interval` steps:
///   loop(i, total, buf):
///     if i >= total: halt buf[0]
///     buf[0] += i
///     if i % interval == 0: migrate [7, target] loop(i+1, total, buf)
///     else loop(i+1, total, buf)
fir::Program make_counter_program(const std::string& target, int interval) {
  ProgramBuilder pb("counter");
  auto main_id = pb.declare("main", {});
  auto loop_id = pb.declare(
      "loop", {Type::integer(), Type::integer(), Type::ptr()});
  {
    auto fb = pb.define(main_id, {});
    auto buf = fb.let_alloc("buf", Atom::integer(1), Atom::integer(0));
    fb.tail_call(Atom::fun_ref(loop_id),
                 {Atom::integer(1), Atom::integer(10), fb.v(buf)});
  }
  {
    auto fb = pb.define(loop_id, {"i", "total", "buf"});
    auto done = fb.let_binop("done", Binop::kGt, fb.arg(0), fb.arg(1));
    fb.branch(
        fb.v(done),
        [&](auto& t) {
          auto x =
              t.let_read("x", Type::integer(), t.arg(2), Atom::integer(0));
          t.halt(t.v(x));
        },
        [&](auto& e) {
          auto old =
              e.let_read("old", Type::integer(), e.arg(2), Atom::integer(0));
          auto acc = e.let_binop("acc", Binop::kAdd, e.v(old), e.arg(0));
          e.write(e.arg(2), Atom::integer(0), e.v(acc));
          auto i1 = e.let_binop("i1", Binop::kAdd, e.arg(0), Atom::integer(1));
          auto m = e.let_binop("m", Binop::kMod, e.arg(0),
                               Atom::integer(interval));
          auto hit = e.let_unop("hit", fir::Unop::kNot, e.v(m));
          e.branch(
              e.v(hit),
              [&](auto& t2) {
                auto tgt = t2.let_atom("tgt", Type::ptr(), pb.str(target));
                t2.migrate(7, t2.v(tgt), Atom::fun_ref(loop_id),
                           {t2.v(i1), t2.arg(1), t2.arg(2)});
              },
              [&](auto& e2) {
                e2.tail_call(Atom::fun_ref(loop_id),
                             {e2.v(i1), e2.arg(1), e2.arg(2)});
              });
        });
  }
  return pb.take("main");
}

constexpr std::int64_t kSum1To10 = 55;

TEST(Migrate, TargetParsing) {
  auto t = migrate::MigrateTarget::parse("migrate://127.0.0.1:9000");
  EXPECT_EQ(t.protocol, migrate::Protocol::kMigrate);
  EXPECT_EQ(t.host, "127.0.0.1");
  EXPECT_EQ(t.port, 9000);
  EXPECT_EQ(t.kind, migrate::ImageKind::kFir);

  t = migrate::MigrateTarget::parse("checkpoint:///tmp/x.img;binary");
  EXPECT_EQ(t.protocol, migrate::Protocol::kCheckpoint);
  EXPECT_EQ(t.path, "/tmp/x.img");
  EXPECT_EQ(t.kind, migrate::ImageKind::kBinary);

  t = migrate::MigrateTarget::parse("suspend://ckpt/state.img");
  EXPECT_EQ(t.protocol, migrate::Protocol::kSuspend);
  EXPECT_EQ(t.to_string(), "suspend://ckpt/state.img");

  EXPECT_THROW(migrate::MigrateTarget::parse("bogus://x"), MigrateError);
  EXPECT_THROW(migrate::MigrateTarget::parse("migrate://hostonly"),
               MigrateError);
  EXPECT_THROW(migrate::MigrateTarget::parse("no-scheme"), MigrateError);
}

TEST(Migrate, CheckpointProtocolContinuesAndFileResumes) {
  const fs::path dir = fs::temp_directory_path() / "mojave_test_ckpt";
  fs::create_directories(dir);
  const fs::path file = dir / "counter.img";
  fs::remove(file);

  vm::Process p(make_counter_program("checkpoint://" + file.string(), 4));
  migrate::Migrator mig(p);
  const auto result = p.run();
  // Checkpoint protocol keeps running: the process finishes locally.
  EXPECT_EQ(result.kind, vm::RunResult::Kind::kHalted);
  EXPECT_EQ(result.exit_code, kSum1To10);
  ASSERT_GE(mig.events().size(), 1u);
  EXPECT_TRUE(mig.events()[0].success);
  ASSERT_TRUE(fs::exists(file));

  // Resurrect from the *last* checkpoint (i = 9 was the last multiple of
  // 4 + ... the last checkpoint happened at i=8, resuming from i=9).
  // The resumed process re-checkpoints and then finishes with the same sum.
  auto res = migrate::resurrect_from_file(
      file, {.cfg = {}, .prepare = [](vm::Process& proc) {
               proc.adopt_hook(std::make_unique<migrate::Migrator>(proc));
             }});
  EXPECT_EQ(res.run.kind, vm::RunResult::Kind::kHalted);
  EXPECT_EQ(res.run.exit_code, kSum1To10);
  EXPECT_GT(res.breakdown.typecheck_seconds + res.breakdown.recompile_seconds,
            0.0);
}

TEST(Migrate, SuspendProtocolTerminatesAndResumes) {
  const fs::path dir = fs::temp_directory_path() / "mojave_test_susp";
  fs::create_directories(dir);
  const fs::path file = dir / "counter.img";
  fs::remove(file);

  vm::Process p(make_counter_program("suspend://" + file.string(), 100));
  migrate::Migrator mig(p);
  const auto result = p.run();
  // interval 100 → single migrate at i=... i%100==0 first hits at i=100?
  // No: i runs 1..10, i%100==0 never... use interval that triggers: see
  // below — with interval 100, hit = (i % 100 == 0) only at i=100, so the
  // program runs to completion without suspending.
  EXPECT_EQ(result.kind, vm::RunResult::Kind::kHalted);
  EXPECT_EQ(result.exit_code, kSum1To10);
  EXPECT_TRUE(mig.events().empty());

  // Now with a triggering interval: the process suspends at i=4 and exits.
  fs::remove(file);
  vm::Process p2(make_counter_program("suspend://" + file.string(), 4));
  migrate::Migrator mig2(p2);
  const auto r2 = p2.run();
  EXPECT_EQ(r2.kind, vm::RunResult::Kind::kMigratedAway);
  ASSERT_TRUE(fs::exists(file));

  // The suspended image resumes and completes. It will suspend again at
  // the next interval hit, so resume repeatedly until it halts.
  std::vector<std::byte> img = migrate::Migrator::read_image_file(file);
  std::int64_t final_code = -1;
  for (int hop = 0; hop < 8; ++hop) {
    auto unpacked = migrate::unpack_process(img);
    migrate::Migrator m(*unpacked.process);
    const auto r = unpacked.process->resume(unpacked.resume_fun,
                                            std::move(unpacked.resume_args));
    if (r.kind == vm::RunResult::Kind::kHalted) {
      final_code = r.exit_code;
      break;
    }
    img = migrate::Migrator::read_image_file(file);
  }
  EXPECT_EQ(final_code, kSum1To10);
}

TEST(Migrate, BinaryImageRoundTrip) {
  const fs::path dir = fs::temp_directory_path() / "mojave_test_bin";
  fs::create_directories(dir);
  const fs::path file = dir / "counter.img";
  fs::remove(file);

  vm::Process p(
      make_counter_program("suspend://" + file.string() + ";binary", 4));
  migrate::Migrator mig(p);
  EXPECT_EQ(p.run().kind, vm::RunResult::Kind::kMigratedAway);

  const auto img = migrate::Migrator::read_image_file(file);
  EXPECT_EQ(migrate::inspect_image(img).kind, migrate::ImageKind::kBinary);
  auto unpacked = migrate::unpack_process(img);
  // The trusted path does not verify or recompile.
  EXPECT_EQ(unpacked.breakdown.typecheck_seconds, 0.0);
  EXPECT_EQ(unpacked.breakdown.recompile_seconds, 0.0);
  EXPECT_FALSE(unpacked.process->has_fir());
}

TEST(Migrate, TcpMigrationMovesProcessToServer) {
  migrate::MigrationServer server(migrate::MigrationServer::Options{});
  vm::Process p(make_counter_program(
      "migrate://127.0.0.1:" + std::to_string(server.port()), 4));
  migrate::Migrator mig(p);
  const auto result = p.run();
  // First migrate at i=4 succeeds → the local copy terminates.
  EXPECT_EQ(result.kind, vm::RunResult::Kind::kMigratedAway);
  ASSERT_EQ(mig.events().size(), 1u);
  EXPECT_TRUE(mig.events()[0].success);

  // The server reconstructs the process. It runs until the *next* migrate
  // instruction; the server's prepare hook did not attach a migrator, so
  // by default the process would throw — attach one via a second server
  // run below. Here we only check the first hop arrived and resumed.
  const auto completed = server.wait_for(1);
  ASSERT_EQ(completed.size(), 1u);
  EXPECT_EQ(completed[0].program_name, "counter");
  // Without a migrator the resumed process fails at its next migrate
  // point; that is recorded as an error, not a crash.
  EXPECT_FALSE(completed[0].error.empty());
}

TEST(Migrate, TcpMigrationChainsToCompletion) {
  // A server whose prepare hook attaches a Migrator so the process can
  // keep hopping (to itself) until it halts.
  migrate::MigrationServer::Options opts;
  opts.prepare = [](vm::Process& proc) {
    proc.adopt_hook(std::make_unique<migrate::Migrator>(proc));
  };
  migrate::MigrationServer server(std::move(opts));

  vm::Process p(make_counter_program(
      "migrate://127.0.0.1:" + std::to_string(server.port()), 4));
  migrate::Migrator mig(p);
  EXPECT_EQ(p.run().kind, vm::RunResult::Kind::kMigratedAway);

  // i=4 hop, i=8 hop, then halt on the server: 2 completions, the last
  // one carrying the final sum.
  const auto completed = server.wait_for(2);
  ASSERT_EQ(completed.size(), 2u);
  std::int64_t final_code = -1;
  for (const auto& c : completed) {
    EXPECT_TRUE(c.error.empty()) << c.error;
    if (c.result.kind == vm::RunResult::Kind::kHalted) {
      final_code = c.result.exit_code;
    }
  }
  EXPECT_EQ(final_code, kSum1To10);
}

TEST(Migrate, RefusesActiveSpeculation) {
  ProgramBuilder pb("specmig");
  auto main_id = pb.declare("main", {});
  auto body_id = pb.declare("body", {Type::integer()});
  {
    auto fb = pb.define(main_id, {});
    fb.speculate(Atom::fun_ref(body_id), {});
  }
  {
    auto fb = pb.define(body_id, {"c"});
    auto tgt = fb.let_atom("tgt", Type::ptr(), pb.str("checkpoint://x.img"));
    fb.migrate(1, fb.v(tgt), Atom::fun_ref(body_id), {fb.arg(0)});
  }
  vm::Process p(pb.take("main"));
  migrate::Migrator mig(p);
  EXPECT_THROW(p.run(), MigrateError);
}

TEST(Migrate, CorruptImageRejected) {
  const fs::path dir = fs::temp_directory_path() / "mojave_test_corrupt";
  fs::create_directories(dir);
  const fs::path file = dir / "c.img";
  vm::Process p(make_counter_program("suspend://" + file.string(), 4));
  migrate::Migrator mig(p);
  EXPECT_EQ(p.run().kind, vm::RunResult::Kind::kMigratedAway);

  auto img = migrate::Migrator::read_image_file(file);
  // Flip a byte in the middle: checksum must catch it.
  img[img.size() / 2] ^= std::byte{0xff};
  EXPECT_THROW((void)migrate::unpack_process(img), ImageError);

  // Truncations must be rejected too.
  auto truncated = migrate::Migrator::read_image_file(file);
  truncated.resize(truncated.size() / 2);
  EXPECT_THROW((void)migrate::unpack_process(truncated), ImageError);
}

TEST(Migrate, ForgedResumeLabelRejected) {
  const fs::path dir = fs::temp_directory_path() / "mojave_test_forge";
  fs::create_directories(dir);
  const fs::path file = dir / "f.img";
  vm::Process p(make_counter_program("suspend://" + file.string(), 4));
  {
    migrate::Migrator mig(p);
    EXPECT_EQ(p.run().kind, vm::RunResult::Kind::kMigratedAway);
  }
  // Re-pack by hand with a label that is not a migration point.
  auto unpacked = migrate::unpack_process(migrate::Migrator::read_image_file(file));
  auto forged =
      migrate::pack_process(*unpacked.process, /*label=*/999,
                            unpacked.resume_fun, unpacked.resume_args,
                            migrate::ImageKind::kFir);
  EXPECT_THROW((void)migrate::unpack_process(forged.bytes), SafetyError);
}

TEST(MigrateResilience, ExhaustedRetriesFallBackToLocalExecution) {
  auto& gave_up = obs::MetricsRegistry::instance().counter("migrate.gave_up");
  const std::uint64_t gave_up_before = gave_up.value();

  // Nothing listens on this port: every connect is refused.
  std::uint16_t port;
  {
    net::TcpListener probe(0);
    port = probe.port();
    probe.shutdown();
  }
  vm::Process p(make_counter_program(
      "migrate://127.0.0.1:" + std::to_string(port), 4));
  migrate::Migrator mig(p);
  net::RetryPolicy policy;
  policy.max_attempts = 2;
  policy.initial_backoff_seconds = 0.002;
  policy.max_backoff_seconds = 0.004;
  policy.connect_timeout_seconds = 1.0;
  mig.set_retry_policy(policy);

  // "If migration fails for any reason, the process will continue to
  // execute on the original machine" — to completion, with the right sum.
  const auto result = p.run();
  EXPECT_EQ(result.kind, vm::RunResult::Kind::kHalted);
  EXPECT_EQ(result.exit_code, kSum1To10);

  // Migrates at i=4 and i=8 both exhausted their budget.
  ASSERT_EQ(mig.events().size(), 2u);
  for (const auto& e : mig.events()) {
    EXPECT_FALSE(e.success);
    EXPECT_EQ(e.attempts, policy.max_attempts);
  }
  EXPECT_EQ(gave_up.value(), gave_up_before + 2);
}

TEST(MigrateResilience, LostAckRetryDoesNotDuplicateTheProcess) {
  auto& dedup_acks =
      obs::MetricsRegistry::instance().counter("migrate.dedup_acks");
  const std::uint64_t dedup_acks_before = dedup_acks.value();

  migrate::MigrationServer::Options opts;
  opts.prepare = [](vm::Process& proc) {
    proc.adopt_hook(std::make_unique<migrate::Migrator>(proc));
  };
  migrate::MigrationServer server(std::move(opts));

  // Swallow the 2nd reply the proxy ever relays: reply 1 is the GO, reply
  // 2 is the OK *after* the server committed — the classic lost ack.
  net::ProxyFaults faults;
  faults.drop_reply_frames = {2};
  net::ChaosProxy proxy("127.0.0.1", server.port(), faults);

  // interval 7 → exactly one migrate (at i=7); the resumed copy then runs
  // to completion on the server with no further hops.
  vm::Process p(make_counter_program(
      "migrate://127.0.0.1:" + std::to_string(proxy.port()), 7));
  migrate::Migrator mig(p);
  net::RetryPolicy policy;
  policy.max_attempts = 4;
  policy.initial_backoff_seconds = 0.01;
  policy.connect_timeout_seconds = 2.0;
  policy.io_timeout_seconds = 2.0;
  mig.set_retry_policy(policy);

  // The retry after the lost ack is answered DU — the client treats the
  // migration as successful and the local copy terminates.
  EXPECT_EQ(p.run().kind, vm::RunResult::Kind::kMigratedAway);
  ASSERT_EQ(mig.events().size(), 1u);
  EXPECT_TRUE(mig.events()[0].success);
  EXPECT_EQ(mig.events()[0].attempts, 2u);

  const auto completed = server.wait_for(1);
  ASSERT_EQ(completed.size(), 1u);
  EXPECT_TRUE(completed[0].error.empty()) << completed[0].error;
  EXPECT_EQ(completed[0].result.kind, vm::RunResult::Kind::kHalted);
  EXPECT_EQ(completed[0].result.exit_code, kSum1To10);

  // At-most-once: the duplicate offer was answered from the dedup window,
  // and the server's census shows exactly one process ever started.
  EXPECT_EQ(server.processes_started(), 1u);
  EXPECT_GE(server.dedup_hits(), 1u);
  EXPECT_EQ(dedup_acks.value(), dedup_acks_before + 1);
  EXPECT_EQ(proxy.stats().replies_dropped, 1u);
}

}  // namespace
