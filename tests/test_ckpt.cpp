// The incremental checkpoint store: chunking, the content-addressed
// store (dedup, retention, GC, integrity fallback), shared-storage
// hygiene, and the ckpt:// protocol end-to-end through the Migrator.
#include <gtest/gtest.h>

#include <cstring>
#include <filesystem>
#include <fstream>
#include <set>

#include "ckpt/chunker.hpp"
#include "ckpt/store.hpp"
#include "cluster/storage.hpp"
#include "fir/builder.hpp"
#include "migrate/image.hpp"
#include "migrate/migrator.hpp"
#include "migrate/protocols.hpp"
#include "migrate/server.hpp"
#include "support/error.hpp"
#include "support/rng.hpp"
#include "vm/process.hpp"

namespace {

using namespace mojave;
namespace fs = std::filesystem;

std::vector<std::byte> random_bytes(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::byte> out(n);
  for (auto& b : out) b = static_cast<std::byte>(rng.next() & 0xff);
  return out;
}

fs::path fresh_dir(const std::string& name) {
  const fs::path dir = fs::temp_directory_path() / name;
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

// ---------------------------------------------------------------- chunker

TEST(Chunker, FixedModeSlicesAtTargetSize) {
  ckpt::ChunkerConfig cfg;
  cfg.mode = ckpt::ChunkerConfig::Mode::kFixed;
  cfg.target_bytes = 1024;
  const auto data = random_bytes(10 * 1024 + 17, 1);
  const auto chunks = ckpt::split_chunks(data, cfg);
  ASSERT_EQ(chunks.size(), 11u);
  for (std::size_t i = 0; i + 1 < chunks.size(); ++i) {
    EXPECT_EQ(chunks[i].size(), 1024u);
  }
  EXPECT_EQ(chunks.back().size(), 17u);
}

TEST(Chunker, ContentDefinedRespectsBoundsAndReassembles) {
  ckpt::ChunkerConfig cfg;  // content-defined defaults
  const auto data = random_bytes(200 * 1024, 2);
  const auto chunks = ckpt::split_chunks(data, cfg);
  ASSERT_GT(chunks.size(), 1u);

  std::size_t total = 0;
  for (std::size_t i = 0; i < chunks.size(); ++i) {
    total += chunks[i].size();
    EXPECT_LE(chunks[i].size(), cfg.max_bytes);
    if (i + 1 < chunks.size()) {
      EXPECT_GE(chunks[i].size(), cfg.min_bytes);
    }
  }
  EXPECT_EQ(total, data.size());

  // The spans alias the input in order: reassembly is the identity.
  std::vector<std::byte> joined;
  for (const auto& c : chunks) joined.insert(joined.end(), c.begin(), c.end());
  EXPECT_EQ(joined, data);

  // Deterministic.
  const auto again = ckpt::split_chunks(data, cfg);
  ASSERT_EQ(again.size(), chunks.size());
  for (std::size_t i = 0; i < chunks.size(); ++i) {
    EXPECT_EQ(again[i].data(), chunks[i].data());
  }
}

TEST(Chunker, LocalEditOnlyDisturbsNearbyChunks) {
  ckpt::ChunkerConfig cfg;
  auto data = random_bytes(256 * 1024, 3);
  const auto keys_of = [&](std::span<const std::byte> img) {
    std::set<std::string> keys;
    for (const auto& c : ckpt::split_chunks(img, cfg)) {
      keys.insert(ckpt::ChunkKey::of(c).hex());
    }
    return keys;
  };
  const auto before = keys_of(data);
  for (std::size_t i = 0; i < 512; ++i) {
    data[100 * 1024 + i] ^= std::byte{0x5a};
  }
  const auto after = keys_of(data);
  std::size_t fresh = 0;
  for (const auto& k : after) fresh += before.count(k) == 0 ? 1 : 0;
  // A 512-byte edit must not re-key more than a handful of chunks — this
  // is the boundary-resynchronisation property fixed-size chunking lacks.
  EXPECT_LE(fresh, 4u);
  EXPECT_GT(before.size(), 20u);
}

TEST(Chunker, RejectsBadConfig) {
  ckpt::ChunkerConfig cfg;
  cfg.target_bytes = 1000;  // not a power of two
  EXPECT_THROW((void)ckpt::split_chunks(random_bytes(64, 4), cfg), Error);
  cfg = {};
  cfg.min_bytes = 1 << 16;  // min > max
  cfg.max_bytes = 1 << 10;
  EXPECT_THROW((void)ckpt::split_chunks(random_bytes(64, 4), cfg), Error);
}

// --------------------------------------------------------------- manifest

TEST(Manifest, EncodeDecodeRoundTrip) {
  ckpt::Manifest m;
  m.snapshot = "rank_3";
  m.seq = 42;
  m.image_bytes = 7;
  m.image_hash = 0xdeadbeef;
  m.chunks = {{ckpt::ChunkKey{1, 2}, 3}, {ckpt::ChunkKey{4, 5}, 4}};
  const auto bytes = m.encode();
  const auto d = ckpt::Manifest::decode(bytes);
  EXPECT_EQ(d.snapshot, m.snapshot);
  EXPECT_EQ(d.seq, m.seq);
  EXPECT_EQ(d.image_bytes, m.image_bytes);
  EXPECT_EQ(d.image_hash, m.image_hash);
  ASSERT_EQ(d.chunks.size(), 2u);
  EXPECT_EQ(d.chunks[1].key, (ckpt::ChunkKey{4, 5}));
  EXPECT_EQ(d.chunks[1].length, 4u);

  // Any flipped byte breaks the trailing checksum.
  auto bad = bytes;
  bad[bytes.size() / 2] ^= std::byte{0x01};
  EXPECT_THROW((void)ckpt::Manifest::decode(bad), ImageError);
  auto truncated = bytes;
  truncated.resize(truncated.size() - 3);
  EXPECT_THROW((void)ckpt::Manifest::decode(truncated), ImageError);
}

// ------------------------------------------------------------------ store

TEST(CheckpointStore, PutRestoreRoundTrip) {
  ckpt::CheckpointStore store(fresh_dir("mj_ckpt_roundtrip"));
  const auto img = random_bytes(100 * 1024, 10);
  const auto put = store.put("rank_0", img);
  EXPECT_EQ(put.seq, 1u);
  EXPECT_TRUE(put.first_snapshot);
  EXPECT_EQ(put.bytes_total, img.size());
  EXPECT_EQ(put.chunks_written, put.chunks_total);

  ckpt::RestoreStats rs;
  const auto back = store.restore("rank_0", &rs);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, img);
  EXPECT_EQ(rs.seq, 1u);
  EXPECT_EQ(rs.manifests_skipped, 0u);
  EXPECT_TRUE(store.has_snapshot("rank_0"));
  EXPECT_FALSE(store.has_snapshot("rank_9"));
  EXPECT_EQ(store.latest_seq("rank_0"), 1u);
}

TEST(CheckpointStore, IdenticalPutWritesNothing) {
  ckpt::CheckpointStore store(fresh_dir("mj_ckpt_identical"));
  const auto img = random_bytes(64 * 1024, 11);
  (void)store.put("a", img);
  const auto again = store.put("a", img);
  EXPECT_EQ(again.seq, 2u);
  EXPECT_FALSE(again.first_snapshot);
  EXPECT_EQ(again.chunks_written, 0u);
  EXPECT_EQ(again.bytes_written, 0u);
  EXPECT_EQ(again.chunks_deduped, again.chunks_total);
}

TEST(CheckpointStore, SmallEditWritesSmallDelta) {
  // The acceptance shape: a second checkpoint whose image differs in one
  // small region uploads well under 25% of the full image.
  ckpt::CheckpointStore store(fresh_dir("mj_ckpt_delta"));
  auto img = random_bytes(256 * 1024, 12);
  (void)store.put("a", img);
  for (std::size_t i = 0; i < 1024; ++i) {
    img[37 * 1024 + i] ^= std::byte{0xff};
  }
  const auto put = store.put("a", img);
  EXPECT_GT(put.chunks_deduped, 0u);
  EXPECT_LT(put.bytes_written, put.bytes_total / 4);

  const auto back = store.restore("a");
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, img);
}

TEST(CheckpointStore, DedupesAcrossSnapshots) {
  ckpt::CheckpointStore store(fresh_dir("mj_ckpt_cross"));
  const auto img = random_bytes(64 * 1024, 13);
  (void)store.put("rank_0", img);
  const auto other = store.put("rank_1", img);
  EXPECT_TRUE(other.first_snapshot);
  EXPECT_EQ(other.chunks_written, 0u);
  EXPECT_GE(store.stats().dedup_ratio(), 1.9);
}

TEST(CheckpointStore, CorruptChunkFallsBackToPreviousManifest) {
  ckpt::CheckpointStore::Options opts;
  opts.auto_gc = false;
  const auto root = fresh_dir("mj_ckpt_corrupt_chunk");
  const auto v1 = random_bytes(64 * 1024, 14);
  auto v2 = v1;
  for (std::size_t i = 0; i < 4096; ++i) v2[20 * 1024 + i] = std::byte{0xab};

  // Flip payload bytes of a chunk only the newest checkpoint references,
  // in place inside its extent file.
  {
    ckpt::CheckpointStore store(root, opts);
    (void)store.put("a", v1);
    (void)store.put("a", v2);
    const auto manifests = store.manifests("a");
    ASSERT_EQ(manifests.size(), 2u);
    std::set<std::string> old_keys;
    for (const auto& e : manifests[0].chunks) old_keys.insert(e.key.hex());
    std::optional<ckpt::ChunkKey> fresh_key;
    for (const auto& e : manifests[1].chunks) {
      if (old_keys.count(e.key.hex()) == 0) fresh_key = e.key;
    }
    ASSERT_TRUE(fresh_key.has_value());
    const auto loc = store.engine().locate(*fresh_key);
    ASSERT_TRUE(loc.has_value());
    ASSERT_GT(loc->stored_len, 0u);
    std::fstream ext(loc->extent,
                     std::ios::in | std::ios::out | std::ios::binary);
    ASSERT_TRUE(ext.good());
    ext.seekp(static_cast<std::streamoff>(loc->payload_offset));
    const char junk[] = "junk";
    ext.write(junk, std::min<std::streamsize>(
                        4, static_cast<std::streamsize>(loc->stored_len)));
    ASSERT_TRUE(ext.good());
  }

  // A fresh store (cold cache, index rebuilt from the extents) must not
  // surface v2 (or garbage): restore falls back to the previous complete
  // checkpoint.
  ckpt::CheckpointStore store(root, opts);
  ckpt::RestoreStats rs;
  const auto back = store.restore("a", &rs);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, v1);
  EXPECT_EQ(rs.seq, 1u);
  EXPECT_EQ(rs.manifests_skipped, 1u);

  // verify() sees the same corruption.
  const auto report = store.verify();
  EXPECT_FALSE(report.ok());
  EXPECT_GE(report.chunks_corrupt, 1u);
}

TEST(CheckpointStore, CorruptOrMissingEverythingMeansNoRestore) {
  ckpt::CheckpointStore::Options opts;
  opts.auto_gc = false;
  ckpt::CheckpointStore store(fresh_dir("mj_ckpt_all_bad"), opts);
  (void)store.put("a", random_bytes(8 * 1024, 15));
  const char junk[] = "x";
  for (const auto& name : store.storage().list(
           ckpt::CheckpointStore::kManifestDir)) {
    store.storage().write(name,
                          std::as_bytes(std::span(junk, std::size_t{1})));
  }
  EXPECT_FALSE(store.restore("a").has_value());
}

TEST(CheckpointStore, RetentionPrunesAndGcKeepsSharedChunks) {
  ckpt::CheckpointStore::Options opts;
  opts.keep_manifests = 2;
  ckpt::CheckpointStore store(fresh_dir("mj_ckpt_gc"), opts);

  // A stable prefix shared by every version + a churning suffix.
  const auto stable = random_bytes(32 * 1024, 16);
  for (int v = 0; v < 5; ++v) {
    auto img = stable;
    const auto churn = random_bytes(16 * 1024, 100 + v);
    img.insert(img.end(), churn.begin(), churn.end());
    (void)store.put("a", img);
  }
  // Retention kept only the newest two manifests…
  EXPECT_EQ(store.manifests("a").size(), 2u);
  EXPECT_EQ(store.latest_seq("a"), 5u);
  // …and GC evicted the dropped versions' churn without touching the
  // shared prefix: everything still restores bit-exact.
  const auto report = store.verify();
  EXPECT_TRUE(report.ok());
  EXPECT_EQ(report.chunks_orphaned, 0u);
  const auto back = store.restore("a");
  ASSERT_TRUE(back.has_value());
  EXPECT_TRUE(std::equal(stable.begin(), stable.end(), back->begin()));
}

TEST(CheckpointStore, ValidatesSnapshotNames) {
  ckpt::CheckpointStore store(fresh_dir("mj_ckpt_names"));
  const auto img = random_bytes(1024, 17);
  EXPECT_THROW((void)store.put("", img), Error);
  EXPECT_THROW((void)store.put("a/b", img), Error);
  EXPECT_THROW((void)store.put("a@2", img), Error);
  EXPECT_THROW((void)store.put("..", img), Error);
  (void)store.put("ok-Name_1.x", img);
  EXPECT_EQ(store.snapshots(), std::vector<std::string>{"ok-Name_1.x"});
}

// ---------------------------------------------------- storage hygiene

TEST(SharedStorage, ListHidesInFlightAndSweepsStaleTempFiles) {
  const auto dir = fresh_dir("mj_storage_tmp");
  cluster::SharedStorage storage(dir);
  const auto img = random_bytes(128, 18);
  storage.write("sub/real.obj", img);

  // A fresh temp file (in-flight write) is hidden but not deleted…
  std::ofstream(dir / "sub" / "inflight.obj.1234.5.tmp") << "partial";
  auto names = storage.list();
  EXPECT_EQ(names, std::vector<std::string>{"sub/real.obj"});
  EXPECT_TRUE(fs::exists(dir / "sub" / "inflight.obj.1234.5.tmp"));

  // …until it is old enough to be crash debris, then list() sweeps it.
  storage.set_stale_tmp_age(0.0);
  names = storage.list("sub");
  EXPECT_EQ(names, std::vector<std::string>{"sub/real.obj"});
  EXPECT_FALSE(fs::exists(dir / "sub" / "inflight.obj.1234.5.tmp"));
}

// --------------------------------------------------------- ckpt:// wiring

TEST(CkptProtocol, TargetParsing) {
  const auto t = migrate::MigrateTarget::parse("ckpt:///var/store/rank_2");
  EXPECT_EQ(t.protocol, migrate::Protocol::kCkpt);
  EXPECT_EQ(t.path, "/var/store");
  EXPECT_EQ(t.snapshot, "rank_2");
  EXPECT_EQ(t.kind, migrate::ImageKind::kFir);
  EXPECT_EQ(t.to_string(), "ckpt:///var/store/rank_2");

  const auto b = migrate::MigrateTarget::parse("ckpt://store/name;binary");
  EXPECT_EQ(b.kind, migrate::ImageKind::kBinary);
  EXPECT_EQ(b.path, "store");
  EXPECT_EQ(b.snapshot, "name");

  EXPECT_THROW(migrate::MigrateTarget::parse("ckpt://nosnapshot"),
               MigrateError);
  EXPECT_THROW(migrate::MigrateTarget::parse("ckpt://trailing/"),
               MigrateError);
}

/// Counts to 10 via `loop`, hitting `migrate [target]` every `interval`
/// steps (same shape as the migrate tests). The accumulator lives in a
/// deliberately oversized buffer — only slot 0 ever changes, so checkpoint
/// images are nearly identical and the incremental store has real work to
/// dedupe.
fir::Program make_counter_program(const std::string& target, int interval) {
  using fir::Atom;
  using fir::Binop;
  using fir::Type;
  fir::ProgramBuilder pb("counter");
  auto main_id = pb.declare("main", {});
  auto loop_id = pb.declare(
      "loop", {Type::integer(), Type::integer(), Type::ptr()});
  {
    auto fb = pb.define(main_id, {});
    auto buf = fb.let_alloc("buf", Atom::integer(4096), Atom::integer(0));
    fb.tail_call(Atom::fun_ref(loop_id),
                 {Atom::integer(1), Atom::integer(10), fb.v(buf)});
  }
  {
    auto fb = pb.define(loop_id, {"i", "total", "buf"});
    auto done = fb.let_binop("done", Binop::kGt, fb.arg(0), fb.arg(1));
    fb.branch(
        fb.v(done),
        [&](auto& t) {
          auto x =
              t.let_read("x", Type::integer(), t.arg(2), Atom::integer(0));
          t.halt(t.v(x));
        },
        [&](auto& e) {
          auto old =
              e.let_read("old", Type::integer(), e.arg(2), Atom::integer(0));
          auto acc = e.let_binop("acc", Binop::kAdd, e.v(old), e.arg(0));
          e.write(e.arg(2), Atom::integer(0), e.v(acc));
          auto i1 = e.let_binop("i1", Binop::kAdd, e.arg(0), Atom::integer(1));
          auto m = e.let_binop("m", Binop::kMod, e.arg(0),
                               Atom::integer(interval));
          auto hit = e.let_unop("hit", fir::Unop::kNot, e.v(m));
          e.branch(
              e.v(hit),
              [&](auto& t2) {
                auto tgt = t2.let_atom("tgt", Type::ptr(), pb.str(target));
                t2.migrate(7, t2.v(tgt), Atom::fun_ref(loop_id),
                           {t2.v(i1), t2.arg(1), t2.arg(2)});
              },
              [&](auto& e2) {
                e2.tail_call(Atom::fun_ref(loop_id),
                             {e2.v(i1), e2.arg(1), e2.arg(2)});
              });
        });
  }
  return pb.take("main");
}

TEST(CkptProtocol, MigratorCheckpointsIncrementallyAndResumes) {
  const auto dir = fresh_dir("mj_ckpt_proto_e2e");
  const std::string uri = "ckpt://" + dir.string() + "/counter";

  vm::Process p(make_counter_program(uri, 4));
  migrate::Migrator mig(p);
  const auto result = p.run();
  // Like the checkpoint protocol, ckpt keeps running to completion.
  EXPECT_EQ(result.kind, vm::RunResult::Kind::kHalted);
  EXPECT_EQ(result.exit_code, 55);
  ASSERT_GE(mig.events().size(), 2u);
  EXPECT_TRUE(mig.events()[0].success);
  // The first checkpoint wrote real bytes; the second, nearly-identical
  // image wrote a strictly smaller delta.
  EXPECT_GT(mig.events()[0].bytes_written, 0u);
  EXPECT_LT(mig.events()[1].bytes_written, mig.events()[0].bytes_written);

  auto store = ckpt::CheckpointStore::open_shared(dir);
  EXPECT_GE(store->latest_seq("counter"), 2u);

  // Resurrect from the URI: resumes past the last checkpoint and finishes
  // with the same sum.
  auto res = migrate::resurrect_from_uri(
      uri, {.cfg = {}, .prepare = [](vm::Process& proc) {
              proc.adopt_hook(std::make_unique<migrate::Migrator>(proc));
            }});
  EXPECT_EQ(res.run.kind, vm::RunResult::Kind::kHalted);
  EXPECT_EQ(res.run.exit_code, 55);

  // read_checkpoint_uri serves both plain paths and ckpt:// URIs.
  EXPECT_THROW((void)migrate::read_checkpoint_uri(
                   "ckpt://" + dir.string() + "/absent"),
               MigrateError);
}

TEST(CkptProtocol, ServerJournalsInboundImages) {
  const auto dir = fresh_dir("mj_ckpt_journal");
  migrate::MigrationServer::Options opts;
  opts.ckpt_journal_root = dir;
  migrate::MigrationServer server(std::move(opts));

  vm::Process p(make_counter_program(
      "migrate://127.0.0.1:" + std::to_string(server.port()), 4));
  migrate::Migrator mig(p);
  EXPECT_EQ(p.run().kind, vm::RunResult::Kind::kMigratedAway);
  (void)server.wait_for(1);

  // The inbound image was journaled (durably, before the ack) and is
  // restorable from the store under the sanitized program name.
  auto store = ckpt::CheckpointStore::open_shared(dir);
  ASSERT_TRUE(store->has_snapshot("inbound_counter"));
  const auto img = store->restore("inbound_counter");
  ASSERT_TRUE(img.has_value());
  EXPECT_EQ(migrate::inspect_image(*img).program_name, "counter");
}

}  // namespace
