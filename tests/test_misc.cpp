// Coverage for the remaining substrate corners: the MojC lexer, shared
// checkpoint storage, TCP framing, hashing/RNG determinism, and the grid
// application's source generator & reference kernel.
#include <gtest/gtest.h>

#include <filesystem>
#include <thread>

#include "cluster/storage.hpp"
#include "frontend/lexer.hpp"
#include "gridapp/heat.hpp"
#include "net/tcp.hpp"
#include "support/hash.hpp"
#include "support/rng.hpp"

namespace {

using namespace mojave;
namespace fs = std::filesystem;

// --- Lexer -----------------------------------------------------------------

TEST(Lexer, TokenizesOperatorsGreedily) {
  using frontend::Tok;
  const auto toks = frontend::lex("a<<=b <= < << ++ += + ^= ^ |= || |");
  std::vector<Tok> kinds;
  for (const auto& t : toks) kinds.push_back(t.kind);
  // "a<<=b": ident, <<, =, ident (no <<= token in MojC)
  const std::vector<Tok> expected = {
      Tok::kIdent, Tok::kShl,      Tok::kAssign, Tok::kIdent, Tok::kLe,
      Tok::kLt,    Tok::kShl,      Tok::kPlusPlus, Tok::kPlusAssign,
      Tok::kPlus,  Tok::kCaretAssign, Tok::kCaret, Tok::kPipeAssign,
      Tok::kOrOr,  Tok::kPipe,     Tok::kEof};
  EXPECT_EQ(kinds, expected);
}

TEST(Lexer, NumbersAndFloats) {
  const auto toks = frontend::lex("42 3.5 1e3 2.5e-2 007");
  EXPECT_EQ(toks[0].ival, 42);
  EXPECT_DOUBLE_EQ(toks[1].fval, 3.5);
  EXPECT_DOUBLE_EQ(toks[2].fval, 1000.0);
  EXPECT_DOUBLE_EQ(toks[3].fval, 0.025);
  EXPECT_EQ(toks[4].ival, 7);
}

TEST(Lexer, StringsWithEscapes) {
  const auto toks = frontend::lex(R"("a\nb\t\"q\"")");
  EXPECT_EQ(toks[0].kind, frontend::Tok::kString);
  EXPECT_EQ(toks[0].text, "a\nb\t\"q\"");
}

TEST(Lexer, CommentsAreSkippedAndTracked) {
  const auto toks = frontend::lex("a // line comment\n/* block\n*/ b");
  ASSERT_GE(toks.size(), 3u);
  EXPECT_EQ(toks[0].text, "a");
  EXPECT_EQ(toks[1].text, "b");
  EXPECT_EQ(toks[1].line, 3);  // line numbers survive comments
}

TEST(Lexer, Errors) {
  EXPECT_THROW((void)frontend::lex("\"unterminated"), ParseError);
  EXPECT_THROW((void)frontend::lex("/* unterminated"), ParseError);
  EXPECT_THROW((void)frontend::lex("@"), ParseError);
  EXPECT_THROW((void)frontend::lex("1e"), ParseError);
  EXPECT_THROW((void)frontend::lex("\"bad \\z escape\""), ParseError);
  EXPECT_THROW((void)frontend::lex("99999999999999999999999"), ParseError);
}

// --- SharedStorage -------------------------------------------------------------

TEST(Storage, WriteReadListRemove) {
  const fs::path root = fs::temp_directory_path() / "mojave_storage_test";
  fs::remove_all(root);
  cluster::SharedStorage storage(root);

  const std::vector<std::byte> payload = {std::byte{1}, std::byte{2},
                                          std::byte{3}};
  storage.write("a.img", payload);
  EXPECT_TRUE(storage.exists("a.img"));
  const auto back = storage.read("a.img");
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, payload);

  storage.write("b.img", payload);
  auto names = storage.list();
  std::sort(names.begin(), names.end());
  EXPECT_EQ(names, (std::vector<std::string>{"a.img", "b.img"}));

  storage.remove("a.img");
  EXPECT_FALSE(storage.exists("a.img"));
  EXPECT_FALSE(storage.read("a.img").has_value());
}

TEST(Storage, OverwriteIsAtomicallyVisible) {
  const fs::path root = fs::temp_directory_path() / "mojave_storage_atomic";
  fs::remove_all(root);
  cluster::SharedStorage storage(root);
  // Concurrent writers + reader: the reader must only ever see a complete
  // image of one generation (size 1000 of byte k), never a torn mix.
  std::atomic<bool> stop{false};
  std::thread writer([&] {
    for (int gen = 0; gen < 50; ++gen) {
      std::vector<std::byte> img(1000, std::byte{static_cast<uint8_t>(gen)});
      storage.write("x.img", img);
    }
    stop.store(true);
  });
  int observations = 0;
  while (!stop.load()) {
    const auto img = storage.read("x.img");
    if (!img.has_value()) continue;
    ASSERT_EQ(img->size(), 1000u);
    for (std::byte b : *img) ASSERT_EQ(b, (*img)[0]);
    ++observations;
  }
  writer.join();
  EXPECT_GT(observations, 0);
}

// --- TCP framing ----------------------------------------------------------------

TEST(Tcp, FrameRoundTripAndPeerClose) {
  net::TcpListener listener(0);
  std::thread server([&] {
    auto stream = listener.accept();
    ASSERT_TRUE(stream.has_value());
    // Echo frames until the peer closes.
    while (auto frame = stream->recv_frame()) {
      stream->send_frame(*frame);
    }
  });

  auto client = net::TcpStream::connect("127.0.0.1", listener.port());
  std::vector<std::byte> msg(100000);
  for (std::size_t i = 0; i < msg.size(); ++i) {
    msg[i] = std::byte{static_cast<std::uint8_t>(i * 7)};
  }
  client.send_frame(msg);
  const auto echoed = client.recv_frame();
  ASSERT_TRUE(echoed.has_value());
  EXPECT_EQ(*echoed, msg);

  // Empty frames are legal.
  client.send_frame({});
  const auto empty = client.recv_frame();
  ASSERT_TRUE(empty.has_value());
  EXPECT_TRUE(empty->empty());

  client.close();
  server.join();
  listener.shutdown();
}

TEST(Tcp, ConnectFailureIsTypedError) {
  EXPECT_THROW((void)net::TcpStream::connect("127.0.0.1", 1),
               NetError);
  EXPECT_THROW((void)net::TcpStream::connect("not-an-ip", 80), NetError);
}

// --- Hash / RNG -------------------------------------------------------------------

TEST(Hash, Fnv1aKnownValuesAndSensitivity) {
  EXPECT_EQ(fnv1a(""), kFnvOffset);
  EXPECT_NE(fnv1a("a"), fnv1a("b"));
  EXPECT_NE(fnv1a("ab"), fnv1a("ba"));
  // Deterministic across calls.
  EXPECT_EQ(fnv1a("mojave"), fnv1a("mojave"));
}

TEST(Rng, DeterministicPerSeedAndWellDistributed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
  Rng c(124);
  EXPECT_NE(Rng(123).next(), c.next());

  Rng d(5);
  int buckets[10] = {0};
  for (int i = 0; i < 10000; ++i) ++buckets[d.below(10)];
  for (int k = 0; k < 10; ++k) {
    EXPECT_GT(buckets[k], 800);
    EXPECT_LT(buckets[k], 1200);
  }
}

// --- Grid app generator -------------------------------------------------------------

TEST(GridGen, GeneratedSourceCompilesForVariousShapes) {
  for (std::uint32_t nodes : {1u, 2u, 4u}) {
    gridapp::HeatConfig cfg;
    cfg.nodes = nodes;
    cfg.rows = 8 * nodes;
    cfg.cols = 6;
    cfg.steps = 3;
    cfg.checkpoint_interval = 2;
    EXPECT_NO_THROW((void)gridapp::heat_program(cfg)) << nodes;
  }
}

TEST(GridGen, RejectsBadShapes) {
  gridapp::HeatConfig cfg;
  cfg.nodes = 3;
  cfg.rows = 10;  // not divisible by 3
  EXPECT_THROW((void)gridapp::heat_mojc_source(cfg), Error);
  cfg.nodes = 0;
  EXPECT_THROW((void)gridapp::heat_mojc_source(cfg), Error);
}

TEST(GridGen, ReferenceConservesBoundaryAndConverges) {
  gridapp::HeatConfig cfg;
  cfg.nodes = 2;
  cfg.rows = 8;
  cfg.cols = 8;
  cfg.steps = 0;
  const auto t0 = gridapp::heat_reference_sums(cfg);
  cfg.steps = 200;
  const auto t200 = gridapp::heat_reference_sums(cfg);
  // Heat flows inward from the hot boundary: total interior energy grows,
  // monotonically approaching the all-100 fixed point.
  double total0 = 0;
  double total200 = 0;
  for (double s : t0) total0 += s;
  for (double s : t200) total200 += s;
  EXPECT_GT(total200, total0);
  EXPECT_LE(total200, 100.0 * 8 * 8 + 1e-9);
}

}  // namespace
