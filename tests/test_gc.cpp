// Garbage collector tests: reachability, promotion, the remembered set,
// compaction transparency, arena growth, and randomized property sweeps
// that compare the heap against a shadow model across collections.
#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "runtime/heap.hpp"
#include "spec/speculation.hpp"
#include "support/rng.hpp"

namespace {

using namespace mojave;
using runtime::EvacuationOrder;
using runtime::Generation;
using runtime::Heap;
using runtime::HeapConfig;
using runtime::RootSet;
using runtime::Tag;
using runtime::Value;

TEST(Gc, CollectsUnreachableBlocks) {
  Heap heap;
  RootSet roots(heap);
  const BlockIndex live = heap.alloc_tagged(4);
  roots.pin(Value::from_ptr(live, 0));
  const BlockIndex dead = heap.alloc_tagged(4);
  heap.collect(/*major=*/true);
  EXPECT_NE(heap.deref(live), nullptr);
  EXPECT_TRUE(heap.table().is_free(dead));
  EXPECT_GE(heap.stats().gc.entries_freed, 1u);
}

TEST(Gc, TransitiveReachabilityThroughSlots) {
  Heap heap;
  RootSet roots(heap);
  const BlockIndex a = heap.alloc_tagged(1);
  roots.pin(Value::from_ptr(a, 0));
  const BlockIndex b = heap.alloc_tagged(1);
  const BlockIndex c = heap.alloc_raw(32);
  heap.write_slot(a, 0, Value::from_ptr(b, 0));
  heap.write_slot(b, 0, Value::from_ptr(c, 0));
  heap.collect(true);
  EXPECT_NE(heap.deref(a), nullptr);
  EXPECT_NE(heap.deref(b), nullptr);
  EXPECT_NE(heap.deref(c), nullptr);
}

TEST(Gc, IndicesSurviveCompactionButAddressesMove) {
  Heap heap;
  RootSet roots(heap);
  std::vector<BlockIndex> blocks;
  for (int i = 0; i < 50; ++i) {
    const BlockIndex idx = heap.alloc_tagged(8, Value::from_int(i));
    blocks.push_back(idx);
    roots.pin(Value::from_ptr(idx, 0));
    // interleave garbage
    (void)heap.alloc_tagged(8);
  }
  std::vector<runtime::Block*> before;
  for (BlockIndex idx : blocks) before.push_back(heap.deref(idx));

  heap.collect(true);

  bool any_moved = false;
  for (std::size_t i = 0; i < blocks.size(); ++i) {
    runtime::Block* now = heap.deref(blocks[i]);
    if (now != before[i]) any_moved = true;
    EXPECT_EQ(now->slot(0).as_int(), static_cast<std::int64_t>(i));
    EXPECT_EQ(now->h.index, blocks[i]);
  }
  EXPECT_TRUE(any_moved);  // compaction really relocated blocks
}

TEST(Gc, MinorPromotesSurvivorsAndFreesGarbage) {
  Heap heap(HeapConfig{.young_capacity = 1u << 16});
  RootSet roots(heap);
  const BlockIndex live = heap.alloc_tagged(8, Value::from_int(5));
  roots.pin(Value::from_ptr(live, 0));
  const BlockIndex dead = heap.alloc_tagged(8);
  EXPECT_EQ(heap.deref(live)->h.generation, Generation::kYoung);

  heap.collect(/*major=*/false);

  EXPECT_EQ(heap.stats().gc.minor_collections, 1u);
  EXPECT_EQ(heap.deref(live)->h.generation, Generation::kOld);
  EXPECT_EQ(heap.deref(live)->slot(0).as_int(), 5);
  EXPECT_TRUE(heap.table().is_free(dead));
  EXPECT_EQ(heap.young_used(), 0u);
}

TEST(Gc, RememberedSetKeepsOldToYoungEdgesAlive) {
  Heap heap(HeapConfig{.young_capacity = 1u << 16});
  RootSet roots(heap);
  const BlockIndex holder = heap.alloc_tagged(1);
  roots.pin(Value::from_ptr(holder, 0));
  heap.collect(false);  // promote holder to the old generation
  ASSERT_EQ(heap.deref(holder)->h.generation, Generation::kOld);

  // A nursery block reachable ONLY from the old-generation holder.
  const BlockIndex young = heap.alloc_tagged(1, Value::from_int(31));
  heap.write_slot(holder, 0, Value::from_ptr(young, 0));

  heap.collect(false);
  EXPECT_FALSE(heap.table().is_free(young));
  EXPECT_EQ(heap.read_slot(young, 0).as_int(), 31);
}

TEST(Gc, OldArenaGrowsOnDemand) {
  Heap heap(HeapConfig{.young_capacity = 1u << 14, .old_capacity = 1u << 16});
  RootSet roots(heap);
  // Keep far more than the initial old capacity live.
  for (int i = 0; i < 200; ++i) {
    const BlockIndex idx = heap.alloc_tagged(128);
    roots.pin(Value::from_ptr(idx, 0));
  }
  EXPECT_GE(heap.live_bytes(), 200u * 128u * sizeof(Value));
  heap.collect(true);
  for (std::size_t i = 0; i < 200; ++i) {
    EXPECT_EQ(heap.deref(roots.at(i).as_ptr().index)->h.count, 128u);
  }
}

TEST(Gc, ProtectedBlocksArePatchedAcrossCollection) {
  Heap heap;
  RootSet roots(heap);
  const BlockIndex idx = heap.alloc_tagged(2, Value::from_int(9));
  roots.pin(Value::from_ptr(idx, 0));
  runtime::Block* raw = heap.deref(idx);
  runtime::ScopedBlockProtect protect(heap, raw);
  heap.collect(true);
  EXPECT_EQ(protect.get(), heap.deref(idx));
  EXPECT_EQ(protect.get()->slot(0).as_int(), 9);
}

// --- Property sweeps ---------------------------------------------------------

struct GcSweepParam {
  bool generational;
  EvacuationOrder order;
  std::uint64_t seed;
};

class GcProperty : public ::testing::TestWithParam<GcSweepParam> {};

/// Build a random object graph, checksum it, run random mutations +
/// collections, and verify the reachable state never changes except as
/// mutated. The shadow model is a map idx → vector<int64> mirrored on
/// every write.
TEST_P(GcProperty, ReachableStateIsPreservedUnderCollection) {
  const GcSweepParam param = GetParam();
  Heap heap(HeapConfig{.young_capacity = 1u << 15,
                       .old_capacity = 1u << 18,
                       .generational = param.generational,
                       .evacuation_order = param.order});
  RootSet roots(heap);
  Rng rng(param.seed);

  std::vector<BlockIndex> live;
  std::map<BlockIndex, std::vector<std::int64_t>> model;

  for (int round = 0; round < 400; ++round) {
    const double dice = rng.uniform();
    if (dice < 0.45 || live.empty()) {
      const auto slots = static_cast<std::uint32_t>(1 + rng.below(32));
      const BlockIndex idx = heap.alloc_tagged(slots, Value::from_int(0));
      live.push_back(idx);
      roots.pin(Value::from_ptr(idx, 0));
      model[idx].assign(slots, 0);
      // Garbage sibling to exercise the sweep.
      (void)heap.alloc_tagged(slots);
    } else if (dice < 0.85) {
      const BlockIndex idx = live[rng.below(live.size())];
      const auto& slots = model[idx];
      const auto s = static_cast<std::uint32_t>(rng.below(slots.size()));
      const auto v = static_cast<std::int64_t>(rng.next() & 0xffff);
      heap.write_slot(idx, s, Value::from_int(v));
      model[idx][s] = v;
    } else if (dice < 0.95) {
      heap.collect(/*major=*/false);
    } else {
      heap.collect(/*major=*/true);
    }
  }
  heap.collect(true);

  for (const auto& [idx, slots] : model) {
    for (std::size_t s = 0; s < slots.size(); ++s) {
      ASSERT_EQ(heap.read_slot(idx, static_cast<std::uint32_t>(s)).as_int(),
                slots[s])
          << "idx=" << idx << " slot=" << s;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, GcProperty,
    ::testing::Values(
        GcSweepParam{true, EvacuationOrder::kAddress, 1},
        GcSweepParam{true, EvacuationOrder::kAddress, 2},
        GcSweepParam{true, EvacuationOrder::kAddress, 3},
        GcSweepParam{true, EvacuationOrder::kBreadthFirst, 4},
        GcSweepParam{false, EvacuationOrder::kAddress, 5},
        GcSweepParam{false, EvacuationOrder::kBreadthFirst, 6}),
    [](const ::testing::TestParamInfo<GcSweepParam>& info) {
      const auto& p = info.param;
      return std::string(p.generational ? "gen" : "nongen") + "_" +
             (p.order == EvacuationOrder::kAddress ? "addr" : "bfs") + "_s" +
             std::to_string(p.seed);
    });

/// Pointer-graph property: random cross-links between live blocks must
/// keep every transitively reachable block alive through collections.
TEST(GcGraph, CrossLinkedGraphSurvives) {
  Heap heap(HeapConfig{.young_capacity = 1u << 15});
  RootSet roots(heap);
  Rng rng(99);
  std::vector<BlockIndex> nodes;
  // One pinned root; everything else reachable only through slot links:
  // node i hangs off node i-1's slot 0 (a chain), with random extra
  // cross-links in slots 1..15 that can only add reachability.
  const BlockIndex root = heap.alloc_tagged(16, Value::from_int(0));
  roots.pin(Value::from_ptr(root, 0));
  nodes.push_back(root);
  for (int i = 1; i < 200; ++i) {
    const BlockIndex idx = heap.alloc_tagged(16, Value::from_int(i));
    heap.write_slot(nodes.back(), 0, Value::from_ptr(idx, 0));
    nodes.push_back(idx);
    const BlockIndex other = nodes[rng.below(nodes.size())];
    heap.write_slot(idx, 1 + static_cast<std::uint32_t>(rng.below(14)),
                    Value::from_ptr(other, 0));
    if (i % 37 == 0) heap.collect(false);
    if (i % 83 == 0) heap.collect(true);
  }
  heap.collect(true);
  // Every node is reachable through the chain: all must be intact, with
  // their payloads preserved and links resolvable.
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    ASSERT_FALSE(heap.table().is_free(nodes[i])) << i;
    // Slot 15 is never written: it still holds the allocation-time fill.
    EXPECT_EQ(heap.read_slot(nodes[i], 15).as_int(),
              static_cast<std::int64_t>(i));
    if (i + 1 < nodes.size()) {
      EXPECT_EQ(heap.read_slot(nodes[i], 0).as_ptr().index, nodes[i + 1]);
    }
  }
}

/// GC must cooperate with active speculations: preserved pre-write
/// versions survive collection (and relocation) so rollback still works.
TEST(GcSpec, PreservedVersionsSurviveCollectionAndRollbackWorks) {
  Heap heap(HeapConfig{.young_capacity = 1u << 15});
  spec::SpeculationManager spec(heap);
  RootSet roots(heap);

  std::vector<BlockIndex> blocks;
  for (int i = 0; i < 40; ++i) {
    const BlockIndex idx = heap.alloc_tagged(8, Value::from_int(i));
    blocks.push_back(idx);
    roots.pin(Value::from_ptr(idx, 0));
  }
  heap.collect(true);

  const SpecLevel level = spec.speculate({});
  for (int i = 0; i < 40; ++i) {
    heap.write_slot(blocks[static_cast<std::size_t>(i)], 0,
                    Value::from_int(1000 + i));
  }
  // Collections while the speculation is live: old versions must be kept
  // alive and patched as compaction moves them.
  heap.collect(false);
  heap.collect(true);
  heap.collect(true);

  spec.rollback(level, 0, /*retry=*/false);
  for (int i = 0; i < 40; ++i) {
    EXPECT_EQ(heap.read_slot(blocks[static_cast<std::size_t>(i)], 0).as_int(),
              i);
  }
}

TEST(GcSpec, CommittedDataSurvivesCollectionAfterManagerActivity) {
  Heap heap(HeapConfig{.young_capacity = 1u << 15});
  spec::SpeculationManager spec(heap);
  RootSet roots(heap);
  const BlockIndex idx = heap.alloc_tagged(4, Value::from_int(7));
  roots.pin(Value::from_ptr(idx, 0));

  const SpecLevel level = spec.speculate({});
  heap.write_slot(idx, 0, Value::from_int(8));
  spec.commit(level);
  heap.collect(true);
  EXPECT_EQ(heap.read_slot(idx, 0).as_int(), 8);
}

TEST(GcObs, CollectionRecordsPauseAndSpan) {
  auto& reg = obs::MetricsRegistry::instance();
  auto& tracer = obs::Tracer::instance();
  tracer.enable(256);

  auto counter_of = [](const obs::RegistrySnapshot& s, const char* name) {
    const auto it = s.counters.find(name);
    return it == s.counters.end() ? std::uint64_t{0} : it->second;
  };
  auto pauses_of = [](const obs::RegistrySnapshot& s) {
    const auto it = s.histograms.find("gc.pause_us");
    return it == s.histograms.end() ? std::uint64_t{0} : it->second.count;
  };
  const auto before = reg.snapshot();

  Heap heap;
  RootSet roots(heap);
  roots.pin(Value::from_ptr(heap.alloc_tagged(4), 0));
  (void)heap.alloc_tagged(4);  // garbage
  heap.collect(/*major=*/true);

  const auto after = reg.snapshot();
  EXPECT_EQ(counter_of(after, "gc.major_collections"),
            counter_of(before, "gc.major_collections") + 1);
  EXPECT_EQ(pauses_of(after), pauses_of(before) + 1);

  const std::string json = tracer.dump_chrome_json();
  EXPECT_NE(json.find("\"cat\":\"gc\""), std::string::npos);
  EXPECT_NE(json.find("\"major\""), std::string::npos);
  tracer.disable();
}

}  // namespace
