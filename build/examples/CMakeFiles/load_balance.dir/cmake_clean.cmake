file(REMOVE_RECURSE
  "CMakeFiles/load_balance.dir/load_balance.cpp.o"
  "CMakeFiles/load_balance.dir/load_balance.cpp.o.d"
  "load_balance"
  "load_balance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/load_balance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
