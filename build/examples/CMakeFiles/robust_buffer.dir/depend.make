# Empty dependencies file for robust_buffer.
# This may be replaced when dependencies are built.
