file(REMOVE_RECURSE
  "CMakeFiles/robust_buffer.dir/robust_buffer.cpp.o"
  "CMakeFiles/robust_buffer.dir/robust_buffer.cpp.o.d"
  "robust_buffer"
  "robust_buffer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/robust_buffer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
