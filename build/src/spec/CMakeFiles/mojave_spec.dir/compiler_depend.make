# Empty compiler generated dependencies file for mojave_spec.
# This may be replaced when dependencies are built.
