file(REMOVE_RECURSE
  "libmojave_spec.a"
)
