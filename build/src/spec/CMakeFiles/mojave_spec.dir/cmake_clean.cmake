file(REMOVE_RECURSE
  "CMakeFiles/mojave_spec.dir/speculation.cpp.o"
  "CMakeFiles/mojave_spec.dir/speculation.cpp.o.d"
  "libmojave_spec.a"
  "libmojave_spec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mojave_spec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
