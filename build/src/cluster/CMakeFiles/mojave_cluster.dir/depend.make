# Empty dependencies file for mojave_cluster.
# This may be replaced when dependencies are built.
