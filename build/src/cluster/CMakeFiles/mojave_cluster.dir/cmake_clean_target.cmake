file(REMOVE_RECURSE
  "libmojave_cluster.a"
)
