file(REMOVE_RECURSE
  "CMakeFiles/mojave_cluster.dir/cluster.cpp.o"
  "CMakeFiles/mojave_cluster.dir/cluster.cpp.o.d"
  "CMakeFiles/mojave_cluster.dir/storage.cpp.o"
  "CMakeFiles/mojave_cluster.dir/storage.cpp.o.d"
  "CMakeFiles/mojave_cluster.dir/tracker.cpp.o"
  "CMakeFiles/mojave_cluster.dir/tracker.cpp.o.d"
  "libmojave_cluster.a"
  "libmojave_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mojave_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
