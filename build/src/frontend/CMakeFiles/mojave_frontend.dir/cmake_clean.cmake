file(REMOVE_RECURSE
  "CMakeFiles/mojave_frontend.dir/compile.cpp.o"
  "CMakeFiles/mojave_frontend.dir/compile.cpp.o.d"
  "CMakeFiles/mojave_frontend.dir/lexer.cpp.o"
  "CMakeFiles/mojave_frontend.dir/lexer.cpp.o.d"
  "CMakeFiles/mojave_frontend.dir/parser.cpp.o"
  "CMakeFiles/mojave_frontend.dir/parser.cpp.o.d"
  "libmojave_frontend.a"
  "libmojave_frontend.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mojave_frontend.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
