file(REMOVE_RECURSE
  "libmojave_frontend.a"
)
