# Empty compiler generated dependencies file for mojave_frontend.
# This may be replaced when dependencies are built.
