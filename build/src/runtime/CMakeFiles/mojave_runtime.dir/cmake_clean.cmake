file(REMOVE_RECURSE
  "CMakeFiles/mojave_runtime.dir/gc.cpp.o"
  "CMakeFiles/mojave_runtime.dir/gc.cpp.o.d"
  "CMakeFiles/mojave_runtime.dir/heap.cpp.o"
  "CMakeFiles/mojave_runtime.dir/heap.cpp.o.d"
  "CMakeFiles/mojave_runtime.dir/value.cpp.o"
  "CMakeFiles/mojave_runtime.dir/value.cpp.o.d"
  "libmojave_runtime.a"
  "libmojave_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mojave_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
