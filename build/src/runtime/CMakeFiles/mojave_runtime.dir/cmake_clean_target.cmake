file(REMOVE_RECURSE
  "libmojave_runtime.a"
)
