# Empty compiler generated dependencies file for mojave_runtime.
# This may be replaced when dependencies are built.
