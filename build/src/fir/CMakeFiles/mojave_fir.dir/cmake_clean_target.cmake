file(REMOVE_RECURSE
  "libmojave_fir.a"
)
