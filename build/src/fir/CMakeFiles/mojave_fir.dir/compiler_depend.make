# Empty compiler generated dependencies file for mojave_fir.
# This may be replaced when dependencies are built.
