
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/fir/builder.cpp" "src/fir/CMakeFiles/mojave_fir.dir/builder.cpp.o" "gcc" "src/fir/CMakeFiles/mojave_fir.dir/builder.cpp.o.d"
  "/root/repo/src/fir/ir.cpp" "src/fir/CMakeFiles/mojave_fir.dir/ir.cpp.o" "gcc" "src/fir/CMakeFiles/mojave_fir.dir/ir.cpp.o.d"
  "/root/repo/src/fir/optimize.cpp" "src/fir/CMakeFiles/mojave_fir.dir/optimize.cpp.o" "gcc" "src/fir/CMakeFiles/mojave_fir.dir/optimize.cpp.o.d"
  "/root/repo/src/fir/printer.cpp" "src/fir/CMakeFiles/mojave_fir.dir/printer.cpp.o" "gcc" "src/fir/CMakeFiles/mojave_fir.dir/printer.cpp.o.d"
  "/root/repo/src/fir/serialize.cpp" "src/fir/CMakeFiles/mojave_fir.dir/serialize.cpp.o" "gcc" "src/fir/CMakeFiles/mojave_fir.dir/serialize.cpp.o.d"
  "/root/repo/src/fir/typecheck.cpp" "src/fir/CMakeFiles/mojave_fir.dir/typecheck.cpp.o" "gcc" "src/fir/CMakeFiles/mojave_fir.dir/typecheck.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/mojave_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
