file(REMOVE_RECURSE
  "CMakeFiles/mojave_fir.dir/builder.cpp.o"
  "CMakeFiles/mojave_fir.dir/builder.cpp.o.d"
  "CMakeFiles/mojave_fir.dir/ir.cpp.o"
  "CMakeFiles/mojave_fir.dir/ir.cpp.o.d"
  "CMakeFiles/mojave_fir.dir/optimize.cpp.o"
  "CMakeFiles/mojave_fir.dir/optimize.cpp.o.d"
  "CMakeFiles/mojave_fir.dir/printer.cpp.o"
  "CMakeFiles/mojave_fir.dir/printer.cpp.o.d"
  "CMakeFiles/mojave_fir.dir/serialize.cpp.o"
  "CMakeFiles/mojave_fir.dir/serialize.cpp.o.d"
  "CMakeFiles/mojave_fir.dir/typecheck.cpp.o"
  "CMakeFiles/mojave_fir.dir/typecheck.cpp.o.d"
  "libmojave_fir.a"
  "libmojave_fir.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mojave_fir.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
