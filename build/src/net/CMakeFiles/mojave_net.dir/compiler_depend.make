# Empty compiler generated dependencies file for mojave_net.
# This may be replaced when dependencies are built.
