file(REMOVE_RECURSE
  "CMakeFiles/mojave_net.dir/sim.cpp.o"
  "CMakeFiles/mojave_net.dir/sim.cpp.o.d"
  "CMakeFiles/mojave_net.dir/tcp.cpp.o"
  "CMakeFiles/mojave_net.dir/tcp.cpp.o.d"
  "libmojave_net.a"
  "libmojave_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mojave_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
