file(REMOVE_RECURSE
  "libmojave_net.a"
)
