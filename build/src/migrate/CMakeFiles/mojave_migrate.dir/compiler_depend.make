# Empty compiler generated dependencies file for mojave_migrate.
# This may be replaced when dependencies are built.
