file(REMOVE_RECURSE
  "libmojave_migrate.a"
)
