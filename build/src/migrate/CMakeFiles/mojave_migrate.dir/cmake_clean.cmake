file(REMOVE_RECURSE
  "CMakeFiles/mojave_migrate.dir/image.cpp.o"
  "CMakeFiles/mojave_migrate.dir/image.cpp.o.d"
  "CMakeFiles/mojave_migrate.dir/migrator.cpp.o"
  "CMakeFiles/mojave_migrate.dir/migrator.cpp.o.d"
  "CMakeFiles/mojave_migrate.dir/protocols.cpp.o"
  "CMakeFiles/mojave_migrate.dir/protocols.cpp.o.d"
  "CMakeFiles/mojave_migrate.dir/server.cpp.o"
  "CMakeFiles/mojave_migrate.dir/server.cpp.o.d"
  "libmojave_migrate.a"
  "libmojave_migrate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mojave_migrate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
