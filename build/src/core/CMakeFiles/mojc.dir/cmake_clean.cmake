file(REMOVE_RECURSE
  "CMakeFiles/mojc.dir/mojc_main.cpp.o"
  "CMakeFiles/mojc.dir/mojc_main.cpp.o.d"
  "mojc"
  "mojc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mojc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
