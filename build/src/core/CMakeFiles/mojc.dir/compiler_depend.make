# Empty compiler generated dependencies file for mojc.
# This may be replaced when dependencies are built.
