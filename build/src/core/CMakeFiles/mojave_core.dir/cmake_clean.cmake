file(REMOVE_RECURSE
  "CMakeFiles/mojave_core.dir/engine.cpp.o"
  "CMakeFiles/mojave_core.dir/engine.cpp.o.d"
  "libmojave_core.a"
  "libmojave_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mojave_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
