# Empty compiler generated dependencies file for mojave_core.
# This may be replaced when dependencies are built.
