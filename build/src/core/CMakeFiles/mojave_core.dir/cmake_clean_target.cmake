file(REMOVE_RECURSE
  "libmojave_core.a"
)
