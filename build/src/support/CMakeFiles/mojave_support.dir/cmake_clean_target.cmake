file(REMOVE_RECURSE
  "libmojave_support.a"
)
