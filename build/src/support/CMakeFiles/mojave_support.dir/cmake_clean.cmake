file(REMOVE_RECURSE
  "CMakeFiles/mojave_support.dir/log.cpp.o"
  "CMakeFiles/mojave_support.dir/log.cpp.o.d"
  "libmojave_support.a"
  "libmojave_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mojave_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
