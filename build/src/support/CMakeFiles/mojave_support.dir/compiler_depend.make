# Empty compiler generated dependencies file for mojave_support.
# This may be replaced when dependencies are built.
