# Empty compiler generated dependencies file for mojave_risc.
# This may be replaced when dependencies are built.
