
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/risc/disasm.cpp" "src/risc/CMakeFiles/mojave_risc.dir/disasm.cpp.o" "gcc" "src/risc/CMakeFiles/mojave_risc.dir/disasm.cpp.o.d"
  "/root/repo/src/risc/lower.cpp" "src/risc/CMakeFiles/mojave_risc.dir/lower.cpp.o" "gcc" "src/risc/CMakeFiles/mojave_risc.dir/lower.cpp.o.d"
  "/root/repo/src/risc/machine.cpp" "src/risc/CMakeFiles/mojave_risc.dir/machine.cpp.o" "gcc" "src/risc/CMakeFiles/mojave_risc.dir/machine.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/fir/CMakeFiles/mojave_fir.dir/DependInfo.cmake"
  "/root/repo/build/src/spec/CMakeFiles/mojave_spec.dir/DependInfo.cmake"
  "/root/repo/build/src/vm/CMakeFiles/mojave_vm.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/mojave_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/mojave_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
