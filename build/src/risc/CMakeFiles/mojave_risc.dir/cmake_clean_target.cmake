file(REMOVE_RECURSE
  "libmojave_risc.a"
)
