file(REMOVE_RECURSE
  "CMakeFiles/mojave_risc.dir/disasm.cpp.o"
  "CMakeFiles/mojave_risc.dir/disasm.cpp.o.d"
  "CMakeFiles/mojave_risc.dir/lower.cpp.o"
  "CMakeFiles/mojave_risc.dir/lower.cpp.o.d"
  "CMakeFiles/mojave_risc.dir/machine.cpp.o"
  "CMakeFiles/mojave_risc.dir/machine.cpp.o.d"
  "libmojave_risc.a"
  "libmojave_risc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mojave_risc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
