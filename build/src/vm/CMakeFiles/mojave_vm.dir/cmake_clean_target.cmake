file(REMOVE_RECURSE
  "libmojave_vm.a"
)
