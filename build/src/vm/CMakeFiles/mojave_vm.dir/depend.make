# Empty dependencies file for mojave_vm.
# This may be replaced when dependencies are built.
