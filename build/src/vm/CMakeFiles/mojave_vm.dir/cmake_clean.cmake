file(REMOVE_RECURSE
  "CMakeFiles/mojave_vm.dir/bytecode.cpp.o"
  "CMakeFiles/mojave_vm.dir/bytecode.cpp.o.d"
  "CMakeFiles/mojave_vm.dir/interpreter.cpp.o"
  "CMakeFiles/mojave_vm.dir/interpreter.cpp.o.d"
  "CMakeFiles/mojave_vm.dir/lowering.cpp.o"
  "CMakeFiles/mojave_vm.dir/lowering.cpp.o.d"
  "CMakeFiles/mojave_vm.dir/process.cpp.o"
  "CMakeFiles/mojave_vm.dir/process.cpp.o.d"
  "libmojave_vm.a"
  "libmojave_vm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mojave_vm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
