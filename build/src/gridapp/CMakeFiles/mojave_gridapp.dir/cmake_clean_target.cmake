file(REMOVE_RECURSE
  "libmojave_gridapp.a"
)
