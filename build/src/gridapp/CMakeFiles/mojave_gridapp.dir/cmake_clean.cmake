file(REMOVE_RECURSE
  "CMakeFiles/mojave_gridapp.dir/heat.cpp.o"
  "CMakeFiles/mojave_gridapp.dir/heat.cpp.o.d"
  "libmojave_gridapp.a"
  "libmojave_gridapp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mojave_gridapp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
