# Empty compiler generated dependencies file for mojave_gridapp.
# This may be replaced when dependencies are built.
