
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_chaos.cpp" "tests/CMakeFiles/mojave_tests.dir/test_chaos.cpp.o" "gcc" "tests/CMakeFiles/mojave_tests.dir/test_chaos.cpp.o.d"
  "/root/repo/tests/test_cluster.cpp" "tests/CMakeFiles/mojave_tests.dir/test_cluster.cpp.o" "gcc" "tests/CMakeFiles/mojave_tests.dir/test_cluster.cpp.o.d"
  "/root/repo/tests/test_engine.cpp" "tests/CMakeFiles/mojave_tests.dir/test_engine.cpp.o" "gcc" "tests/CMakeFiles/mojave_tests.dir/test_engine.cpp.o.d"
  "/root/repo/tests/test_fir.cpp" "tests/CMakeFiles/mojave_tests.dir/test_fir.cpp.o" "gcc" "tests/CMakeFiles/mojave_tests.dir/test_fir.cpp.o.d"
  "/root/repo/tests/test_frontend.cpp" "tests/CMakeFiles/mojave_tests.dir/test_frontend.cpp.o" "gcc" "tests/CMakeFiles/mojave_tests.dir/test_frontend.cpp.o.d"
  "/root/repo/tests/test_frontend_ext.cpp" "tests/CMakeFiles/mojave_tests.dir/test_frontend_ext.cpp.o" "gcc" "tests/CMakeFiles/mojave_tests.dir/test_frontend_ext.cpp.o.d"
  "/root/repo/tests/test_gc.cpp" "tests/CMakeFiles/mojave_tests.dir/test_gc.cpp.o" "gcc" "tests/CMakeFiles/mojave_tests.dir/test_gc.cpp.o.d"
  "/root/repo/tests/test_migrate.cpp" "tests/CMakeFiles/mojave_tests.dir/test_migrate.cpp.o" "gcc" "tests/CMakeFiles/mojave_tests.dir/test_migrate.cpp.o.d"
  "/root/repo/tests/test_misc.cpp" "tests/CMakeFiles/mojave_tests.dir/test_misc.cpp.o" "gcc" "tests/CMakeFiles/mojave_tests.dir/test_misc.cpp.o.d"
  "/root/repo/tests/test_optimize.cpp" "tests/CMakeFiles/mojave_tests.dir/test_optimize.cpp.o" "gcc" "tests/CMakeFiles/mojave_tests.dir/test_optimize.cpp.o.d"
  "/root/repo/tests/test_risc.cpp" "tests/CMakeFiles/mojave_tests.dir/test_risc.cpp.o" "gcc" "tests/CMakeFiles/mojave_tests.dir/test_risc.cpp.o.d"
  "/root/repo/tests/test_runtime.cpp" "tests/CMakeFiles/mojave_tests.dir/test_runtime.cpp.o" "gcc" "tests/CMakeFiles/mojave_tests.dir/test_runtime.cpp.o.d"
  "/root/repo/tests/test_serialize.cpp" "tests/CMakeFiles/mojave_tests.dir/test_serialize.cpp.o" "gcc" "tests/CMakeFiles/mojave_tests.dir/test_serialize.cpp.o.d"
  "/root/repo/tests/test_spec.cpp" "tests/CMakeFiles/mojave_tests.dir/test_spec.cpp.o" "gcc" "tests/CMakeFiles/mojave_tests.dir/test_spec.cpp.o.d"
  "/root/repo/tests/test_vm_basic.cpp" "tests/CMakeFiles/mojave_tests.dir/test_vm_basic.cpp.o" "gcc" "tests/CMakeFiles/mojave_tests.dir/test_vm_basic.cpp.o.d"
  "/root/repo/tests/test_vm_props.cpp" "tests/CMakeFiles/mojave_tests.dir/test_vm_props.cpp.o" "gcc" "tests/CMakeFiles/mojave_tests.dir/test_vm_props.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/vm/CMakeFiles/mojave_vm.dir/DependInfo.cmake"
  "/root/repo/build/src/migrate/CMakeFiles/mojave_migrate.dir/DependInfo.cmake"
  "/root/repo/build/src/frontend/CMakeFiles/mojave_frontend.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/mojave_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/gridapp/CMakeFiles/mojave_gridapp.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/mojave_core.dir/DependInfo.cmake"
  "/root/repo/build/src/risc/CMakeFiles/mojave_risc.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/mojave_net.dir/DependInfo.cmake"
  "/root/repo/build/src/fir/CMakeFiles/mojave_fir.dir/DependInfo.cmake"
  "/root/repo/build/src/spec/CMakeFiles/mojave_spec.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/mojave_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/mojave_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
