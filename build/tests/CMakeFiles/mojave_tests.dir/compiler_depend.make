# Empty compiler generated dependencies file for mojave_tests.
# This may be replaced when dependencies are built.
