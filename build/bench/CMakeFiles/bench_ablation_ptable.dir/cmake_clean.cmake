file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_ptable.dir/bench_ablation_ptable.cpp.o"
  "CMakeFiles/bench_ablation_ptable.dir/bench_ablation_ptable.cpp.o.d"
  "bench_ablation_ptable"
  "bench_ablation_ptable.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_ptable.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
