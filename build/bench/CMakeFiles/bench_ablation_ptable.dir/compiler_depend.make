# Empty compiler generated dependencies file for bench_ablation_ptable.
# This may be replaced when dependencies are built.
