# Empty compiler generated dependencies file for bench_grid_checkpoint.
# This may be replaced when dependencies are built.
