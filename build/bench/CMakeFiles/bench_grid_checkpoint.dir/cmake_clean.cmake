file(REMOVE_RECURSE
  "CMakeFiles/bench_grid_checkpoint.dir/bench_grid_checkpoint.cpp.o"
  "CMakeFiles/bench_grid_checkpoint.dir/bench_grid_checkpoint.cpp.o.d"
  "bench_grid_checkpoint"
  "bench_grid_checkpoint.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_grid_checkpoint.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
