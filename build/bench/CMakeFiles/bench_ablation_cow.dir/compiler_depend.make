# Empty compiler generated dependencies file for bench_ablation_cow.
# This may be replaced when dependencies are built.
