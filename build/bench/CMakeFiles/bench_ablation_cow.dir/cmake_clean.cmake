file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_cow.dir/bench_ablation_cow.cpp.o"
  "CMakeFiles/bench_ablation_cow.dir/bench_ablation_cow.cpp.o.d"
  "bench_ablation_cow"
  "bench_ablation_cow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_cow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
